"""Hash-consed reduced ordered binary decision diagrams.

Nodes are plain integers.  The two terminals are the constants
:data:`FALSE` (``0``) and :data:`TRUE` (``1``); internal nodes are ids
``>= 2`` indexing parallel arrays inside the owning
:class:`BddManager`.  Because the unique table enforces structural
sharing, two nodes represent the same Boolean function iff their ids
are equal — the property the simulator relies on to detect dead
execution paths (``control == FALSE``) in O(1).

The manager is deliberately garbage-collection free: symbolic
simulation creates and drops huge numbers of intermediate functions,
and reference counting in pure Python costs more than it saves at the
scale this package targets.  ``clear_caches`` can be called to drop the
operator caches between simulation phases if memory pressure matters.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import BddError

FALSE = 0
TRUE = 1

_TERMINAL_LEVEL = 1 << 30


class BddManager:
    """Owner of a BDD node arena and its operator caches.

    All node ids returned by one manager are only meaningful to that
    manager.  Typical use::

        m = BddManager()
        a = m.new_var("a")
        b = m.new_var("b")
        f = m.and_(a, m.not_(b))
        assert m.eval(f, {0: True, 1: False})
    """

    def __init__(self) -> None:
        # Parallel node arrays; slots 0/1 are placeholders for terminals.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [0, 0]
        self._high: List[int] = [0, 0]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._var_names: List[str] = []
        self._var_bdds: List[int] = []
        # Cache instrumentation (repro.obs).  Misses are derived for
        # free: every miss inserts exactly one computed-table entry and
        # the table only shrinks on reorder(), where the length is
        # folded into the epoch base.  Only hits pay an increment, and
        # only on the ite fast path; terminal shortcuts that never
        # consult a cache are counted by neither side.
        self._ite_hits = 0
        self._ite_miss_base = 0
        self._not_hits = 0
        self._not_miss_base = 0

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------

    @property
    def var_count(self) -> int:
        """Number of variables created so far."""
        return len(self._var_names)

    def new_var(self, name: Optional[str] = None) -> int:
        """Create a fresh variable at the bottom of the order.

        Returns the BDD of the variable itself.  ``name`` is only used
        for diagnostics (:meth:`var_name`, :meth:`to_expr`).
        """
        level = len(self._var_names)
        self._var_names.append(name if name is not None else f"v{level}")
        node = self._mk(level, FALSE, TRUE)
        self._var_bdds.append(node)
        return node

    def var(self, level: int) -> int:
        """Return the BDD for the existing variable at ``level``."""
        try:
            return self._var_bdds[level]
        except IndexError:
            raise BddError(f"unknown variable level {level}") from None

    def var_name(self, level: int) -> str:
        """Return the diagnostic name of the variable at ``level``."""
        try:
            return self._var_names[level]
        except IndexError:
            raise BddError(f"unknown variable level {level}") from None

    def level_of(self, node: int) -> int:
        """Return the level (order position) of ``node``'s top variable."""
        return self._level[node]

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduced)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def cofactors(self, node: int, level: int) -> Tuple[int, int]:
        """Return the (low, high) cofactors of ``node`` w.r.t. ``level``.

        ``level`` must not be below ``node``'s top level.
        """
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # core operators
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + ¬f·h`` — the universal BDD operator."""
        # Terminal and triple reductions (cheap canonicalization that
        # multiplies computed-table hit rates).
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == f:
            g = TRUE
        if h == f:
            h = FALSE
        if g == TRUE and h == FALSE:
            return f
        cache = self._ite_cache
        key = (f, g, h)
        cached = cache.get(key)
        if cached is not None:
            self._ite_hits += 1
            return cached
        levels = self._level
        lows = self._low
        highs = self._high
        lf, lg, lh = levels[f], levels[g], levels[h]
        top = lf if lf < lg else lg
        if lh < top:
            top = lh
        if lf == top:
            f0, f1 = lows[f], highs[f]
        else:
            f0 = f1 = f
        if lg == top:
            g0, g1 = lows[g], highs[g]
        else:
            g0 = g1 = g
        if lh == top:
            h0, h1 = lows[h], highs[h]
        else:
            h0 = h1 = h
        r0 = self.ite(f0, g0, h0)
        r1 = self.ite(f1, g1, h1)
        if r0 == r1:
            result = r0
        else:
            ukey = (top, r0, r1)
            unique = self._unique
            result = unique.get(ukey)
            if result is None:
                result = len(levels)
                levels.append(top)
                lows.append(r0)
                highs.append(r1)
                unique[ukey] = result
        cache[key] = result
        return result

    def not_(self, f: int) -> int:
        """Boolean complement."""
        if f == TRUE:
            return FALSE
        if f == FALSE:
            return TRUE
        cached = self._not_cache.get(f)
        if cached is not None:
            self._not_hits += 1
            return cached
        result = self._mk(
            self._level[f], self.not_(self._low[f]), self.not_(self._high[f])
        )
        self._not_cache[f] = result
        self._not_cache[result] = f
        return result

    def and_(self, f: int, g: int) -> int:
        """Conjunction (operands sorted for cache locality)."""
        if f > g:
            f, g = g, f
        return self.ite(g, f, FALSE)

    def or_(self, f: int, g: int) -> int:
        """Disjunction (operands sorted for cache locality)."""
        if f > g:
            f, g = g, f
        return self.ite(g, TRUE, f)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or (operands sorted for cache locality)."""
        if f > g:
            f, g = g, f
        if f == FALSE:
            return g
        return self.ite(g, self.not_(f), f)

    def xnor(self, f: int, g: int) -> int:
        """Equivalence (operands sorted for cache locality)."""
        if f > g:
            f, g = g, f
        if f == FALSE:
            return self.not_(g)
        return self.ite(g, f, self.not_(f))

    def nand(self, f: int, g: int) -> int:
        """Negated conjunction."""
        return self.not_(self.and_(f, g))

    def nor(self, f: int, g: int) -> int:
        """Negated disjunction."""
        return self.not_(self.or_(f, g))

    def implies(self, f: int, g: int) -> int:
        """Implication ``f → g``."""
        return self.ite(f, g, TRUE)

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of an iterable of functions (TRUE when empty)."""
        result = TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == FALSE:
                return FALSE
        return result

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of an iterable of functions (FALSE when empty)."""
        result = FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == TRUE:
                return TRUE
        return result

    # ------------------------------------------------------------------
    # restriction / composition / quantification
    # ------------------------------------------------------------------

    def restrict(self, f: int, level: int, value: bool) -> int:
        """Cofactor ``f`` with the variable at ``level`` fixed to ``value``."""
        return self._restrict(f, level, bool(value), {})

    def _restrict(
        self, f: int, level: int, value: bool, memo: Dict[int, int]
    ) -> int:
        node_level = self._level[f]
        if node_level > level:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        if node_level == level:
            result = self._high[f] if value else self._low[f]
        else:
            low = self._restrict(self._low[f], level, value, memo)
            high = self._restrict(self._high[f], level, value, memo)
            result = self._mk(node_level, low, high)
        memo[f] = result
        return result

    def restrict_many(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``f`` under a partial assignment ``{level: value}``."""
        if not assignment:
            return f
        return self._restrict_many(f, assignment, {})

    def _restrict_many(
        self, f: int, assignment: Dict[int, bool], memo: Dict[int, int]
    ) -> int:
        if f <= TRUE:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        level = self._level[f]
        value = assignment.get(level)
        if value is None:
            low = self._restrict_many(self._low[f], assignment, memo)
            high = self._restrict_many(self._high[f], assignment, memo)
            result = self._mk(level, low, high)
        elif value:
            result = self._restrict_many(self._high[f], assignment, memo)
        else:
            result = self._restrict_many(self._low[f], assignment, memo)
        memo[f] = result
        return result

    def compose(self, f: int, level: int, g: int) -> int:
        """Substitute the function ``g`` for the variable at ``level`` in ``f``."""
        return self._compose(f, level, g, {})

    def _compose(self, f: int, level: int, g: int, memo: Dict[int, int]) -> int:
        node_level = self._level[f]
        if node_level > level:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        if node_level == level:
            result = self.ite(g, self._high[f], self._low[f])
        else:
            low = self._compose(self._low[f], level, g, memo)
            high = self._compose(self._high[f], level, g, memo)
            result = self.ite(self.var(node_level), high, low)
        memo[f] = result
        return result

    def exists(self, f: int, levels: Iterable[int]) -> int:
        """Existentially quantify the variables at ``levels`` out of ``f``."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        return self._exists(f, level_set, {})

    def _exists(self, f: int, levels: frozenset, memo: Dict[int, int]) -> int:
        if f <= TRUE:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        level = self._level[f]
        low = self._exists(self._low[f], levels, memo)
        high = self._exists(self._high[f], levels, memo)
        if level in levels:
            result = self.or_(low, high)
        else:
            result = self._mk(level, low, high)
        memo[f] = result
        return result

    def forall(self, f: int, levels: Iterable[int]) -> int:
        """Universally quantify the variables at ``levels`` out of ``f``."""
        return self.not_(self.exists(self.not_(f), levels))

    # ------------------------------------------------------------------
    # evaluation / satisfiability
    # ------------------------------------------------------------------

    def eval(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a total assignment ``{level: value}``.

        Variables missing from ``assignment`` default to ``False`` — the
        convention used when completing an error-trace witness (don't
        care bits are reported as zero, like the paper's resimulation).
        """
        while f > TRUE:
            if assignment.get(self._level[f], False):
                f = self._high[f]
            else:
                f = self._low[f]
        return f == TRUE

    def sat_one(self, f: int) -> Optional[Dict[int, bool]]:
        """Return one satisfying (partial) assignment, or ``None``.

        Only the variables on the chosen path appear in the result;
        absent variables are don't-cares.
        """
        if f == FALSE:
            return None
        cube: Dict[int, bool] = {}
        while f > TRUE:
            if self._high[f] != FALSE:
                cube[self._level[f]] = True
                f = self._high[f]
            else:
                cube[self._level[f]] = False
                f = self._low[f]
        return cube

    def sat_count(self, f: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the total number of manager variables.
        """
        if nvars is None:
            nvars = self.var_count
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << nvars
        memo: Dict[int, int] = {}

        def eff_level(node: int) -> int:
            return nvars if node <= TRUE else self._level[node]

        def count(node: int) -> int:
            # Satisfying assignments over the variables in
            # [level(node), nvars); terminals sit at level nvars.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            cached = memo.get(node)
            if cached is None:
                level = self._level[node]
                low, high = self._low[node], self._high[node]
                cached = count(low) * (1 << (eff_level(low) - level - 1)) + count(
                    high
                ) * (1 << (eff_level(high) - level - 1))
                memo[node] = cached
            return cached

        # Variables ordered above the root are free choices.
        return count(f) * (1 << self._level[f])

    def all_sat(self, f: int, levels: Optional[Sequence[int]] = None) -> Iterator[Dict[int, bool]]:
        """Yield every satisfying assignment of ``f``.

        When ``levels`` is given, each yielded assignment is total over
        exactly those levels (don't-cares expanded); otherwise partial
        path assignments are yielded.
        """
        if f == FALSE:
            return
        if levels is None:
            yield from self._all_paths(f, {})
            return
        level_list = list(levels)

        def expand(index: int, cube: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if index == len(level_list):
                yield dict(cube)
                return
            level = level_list[index]
            if level in cube:
                yield from expand(index + 1, cube)
                return
            for value in (False, True):
                cube[level] = value
                yield from expand(index + 1, cube)
                del cube[level]

        for path in self._all_paths(f, {}):
            yield from expand(0, path)

    def _all_paths(self, f: int, cube: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
        if f == FALSE:
            return
        if f == TRUE:
            yield dict(cube)
            return
        level = self._level[f]
        cube[level] = False
        yield from self._all_paths(self._low[f], cube)
        cube[level] = True
        yield from self._all_paths(self._high[f], cube)
        del cube[level]

    def support(self, f: int) -> Set[int]:
        """Set of variable levels ``f`` depends on."""
        seen: Set[int] = set()
        support: Set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            support.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return support

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def node_count(self, f: int) -> int:
        """Number of internal nodes in ``f`` (terminals excluded)."""
        seen: Set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    @property
    def total_nodes(self) -> int:
        """Total nodes ever created in the arena (a growth metric)."""
        return len(self._level) - 2

    @property
    def peak_nodes(self) -> int:
        """Peak live nodes.  The arena never shrinks (no GC), so the
        peak equals :attr:`total_nodes`; the alias keeps the memory
        story explicit in stats output."""
        return len(self._level) - 2

    @property
    def ite_cache_hits(self) -> int:
        return self._ite_hits

    @property
    def ite_cache_misses(self) -> int:
        # Every miss stores exactly one computed-table entry, so the
        # count falls out of the table length — no hot-path counter.
        return self._ite_miss_base + len(self._ite_cache)

    @property
    def not_cache_hits(self) -> int:
        return self._not_hits

    @property
    def not_cache_misses(self) -> int:
        # Each miss inserts a complement *pair* (f -> r and r -> f);
        # neither key can pre-exist (a present r -> f implies f -> r
        # was inserted alongside it, which would have been a hit).
        return self._not_miss_base + len(self._not_cache) // 2

    def cache_stats(self) -> Dict[str, float]:
        """Cache/arena counters as a flat dict (repro.obs schema).

        Hit rates are fractions in [0, 1]; ``nodes``/``peak_nodes``
        count internal nodes (terminals excluded).
        """
        ite_misses = self.ite_cache_misses
        not_misses = self.not_cache_misses
        ite_total = self._ite_hits + ite_misses
        not_total = self._not_hits + not_misses
        return {
            "ite_hits": self._ite_hits,
            "ite_misses": ite_misses,
            "ite_hit_rate": self._ite_hits / ite_total if ite_total else 0.0,
            "not_hits": self._not_hits,
            "not_misses": not_misses,
            "not_hit_rate": self._not_hits / not_total if not_total else 0.0,
            "nodes": self.total_nodes,
            "peak_nodes": self.peak_nodes,
            "var_count": self.var_count,
        }

    def attach_metrics(self, registry) -> None:
        """Register live gauges on a :class:`repro.obs.MetricsRegistry`.

        Gauges are callback-backed: they read the manager at snapshot
        time, so attaching costs nothing on the operator hot paths.
        """
        pairs = (
            ("bdd.nodes", "internal nodes in the arena",
             lambda: self.total_nodes),
            ("bdd.peak_nodes", "peak live nodes (== total, no GC)",
             lambda: self.peak_nodes),
            ("bdd.vars", "BDD variables created",
             lambda: self.var_count),
            ("bdd.ite_cache.hits", "ite computed-table hits",
             lambda: self._ite_hits),
            ("bdd.ite_cache.misses", "ite computed-table misses",
             lambda: self.ite_cache_misses),
            ("bdd.not_cache.hits", "not cache hits",
             lambda: self._not_hits),
            ("bdd.not_cache.misses", "not cache misses",
             lambda: self.not_cache_misses),
        )
        for name, help_, fn in pairs:
            registry.gauge(name, help_).set_function(fn)

    def instrument_latency(self, registry, sample_every: int = 64) -> None:
        """Record per-operation latency histograms (opt-in, sampled).

        Wraps :meth:`ite` and :meth:`not_` on *this instance* so every
        ``sample_every``-th top-level call is timed into
        ``bdd.op_seconds{op=...}``.  Recursive inner calls pass through
        untimed (a depth counter), so a sample measures one whole
        operator application.  Only instrumented managers pay the
        wrapper cost; plain managers are untouched.
        """
        import time as _time

        hist = registry.histogram(
            "bdd.op_seconds", "top-level BDD operator latency",
            labels=("op",),
        )
        ite_hist = hist.labels(op="ite")
        not_hist = hist.labels(op="not")
        orig_ite = BddManager.ite.__get__(self)
        orig_not = BddManager.not_.__get__(self)
        state = {"depth": 0, "n": 0}

        def timed_ite(f: int, g: int, h: int) -> int:
            if state["depth"]:
                return orig_ite(f, g, h)
            state["n"] += 1
            if state["n"] % sample_every:
                state["depth"] = 1
                try:
                    return orig_ite(f, g, h)
                finally:
                    state["depth"] = 0
            started = _time.perf_counter()
            state["depth"] = 1
            try:
                return orig_ite(f, g, h)
            finally:
                state["depth"] = 0
                ite_hist.observe(_time.perf_counter() - started)

        def timed_not(f: int) -> int:
            if state["depth"]:
                return orig_not(f)
            state["n"] += 1
            if state["n"] % sample_every:
                state["depth"] = 1
                try:
                    return orig_not(f)
                finally:
                    state["depth"] = 0
            started = _time.perf_counter()
            state["depth"] = 1
            try:
                return orig_not(f)
            finally:
                state["depth"] = 0
                not_hist.observe(_time.perf_counter() - started)

        self.ite = timed_ite  # type: ignore[method-assign]
        self.not_ = timed_not  # type: ignore[method-assign]

    def clear_caches(self) -> None:
        """Drop the operator caches (the unique table is kept)."""
        self._ite_miss_base += len(self._ite_cache)
        self._not_miss_base += len(self._not_cache) // 2
        self._ite_cache.clear()
        self._not_cache.clear()

    def to_expr(self, f: int) -> str:
        """Render ``f`` as a nested ``ite(...)`` string for debugging."""
        if f == FALSE:
            return "0"
        if f == TRUE:
            return "1"
        name = self._var_names[self._level[f]]
        low = self.to_expr(self._low[f])
        high = self.to_expr(self._high[f])
        if low == "0" and high == "1":
            return name
        if low == "1" and high == "0":
            return f"!{name}"
        return f"ite({name}, {high}, {low})"

    def rebuild(
        self, order: Sequence[int], roots: Iterable[int]
    ) -> Tuple["BddManager", Dict[int, int]]:
        """Re-express ``roots`` in a fresh manager with a new variable order.

        ``order`` lists existing levels in their new order (a
        permutation of ``range(var_count)``).  Returns the new manager
        and a map from each requested old root to its translated node.

        This is *static* reordering: the paper's experiments ran with
        dynamic reordering disabled, but order still matters enormously
        (see ``benchmarks/bench_ordering.py`` for the classic adder
        example), and callers that know their structure — e.g.
        interleaving operand bits — can use this between phases.
        """
        order = list(order)
        if sorted(order) != list(range(self.var_count)):
            raise BddError(
                f"order must be a permutation of range({self.var_count})"
            )
        new = BddManager()
        new_var_bdd: Dict[int, int] = {}
        for old_level in order:
            new_var_bdd[old_level] = new.new_var(self._var_names[old_level])
        memo: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

        def translate(node: int) -> int:
            cached = memo.get(node)
            if cached is not None:
                return cached
            low = translate(self._low[node])
            high = translate(self._high[node])
            result = new.ite(new_var_bdd[self._level[node]], high, low)
            memo[node] = result
            return result

        return new, {root: translate(root) for root in set(roots)}

    def check_node(self, f: int) -> None:
        """Validate that ``f`` is a node of this manager (for API misuse)."""
        if not isinstance(f, int) or f < 0 or f >= len(self._level):
            raise BddError(f"not a node of this manager: {f!r}")
