"""Hash-consed reduced ordered binary decision diagrams.

Nodes are plain integers.  The two terminals are the constants
:data:`FALSE` (``0``) and :data:`TRUE` (``1``); internal nodes are ids
``>= 2`` indexing parallel arrays inside the owning
:class:`BddManager`.  Because the unique table enforces structural
sharing, two nodes represent the same Boolean function iff their ids
are equal — the property the simulator relies on to detect dead
execution paths (``control == FALSE``) in O(1).

The manager deliberately avoids *reference counting*: symbolic
simulation creates and drops huge numbers of intermediate functions,
and per-operation count maintenance in pure Python costs more than it
saves at the scale this package targets.  Instead, memory is managed
at *safe points* with mark-and-sweep garbage collection
(:meth:`BddManager.collect`): holders of node ids register as *root
providers* (:meth:`register_root_provider`) or pin individual nodes
through the stable handle table (:meth:`ref`); a collection marks from
the registered roots, compacts the arena, rebuilds the unique table
and remaps every registered reference, so all held ids stay valid.

Variable order management comes in three flavours:

* :meth:`rebuild` — static reordering into a *fresh* manager (the
  original API, kept for standalone analyses);
* :meth:`reorder` — in-place reordering of *this* manager: live roots
  are re-expressed under the new order and every registered reference
  is remapped;
* :meth:`sift` — dynamic sifting (Rudell): each variable is moved
  through the order with adjacent-level swaps on a scratch copy of the
  live graph, bounded by ``sift_max_swap``/``sift_max_growth`` the way
  CUDD bounds its reordering passes, and the best order found is then
  applied with :meth:`reorder`.

``clear_caches`` can still be called to drop just the operator caches
between simulation phases if memory pressure matters.
"""

from __future__ import annotations

import time as _time
import weakref
from typing import (
    Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple,
)

from repro.errors import BddError

FALSE = 0
TRUE = 1

_TERMINAL_LEVEL = 1 << 30


class BddRef:
    """A GC-stable reference to one node of a :class:`BddManager`.

    Raw node ids held outside the manager are invalidated by
    :meth:`BddManager.collect` and :meth:`BddManager.reorder` unless
    their holder participates in the root-provider protocol.  A
    ``BddRef`` (from :meth:`BddManager.ref`) is the lightweight
    alternative: the manager keeps a weak handle table and rewrites
    ``ref.node`` on every collection/reorder, so the reference both
    pins the node (it is a GC root) and stays valid across arena
    compactions.  Dropping the last strong reference to the handle
    un-pins the node automatically.
    """

    __slots__ = ("manager", "node", "__weakref__")

    def __init__(self, manager: "BddManager", node: int) -> None:
        self.manager = manager
        self.node = node

    def deref(self) -> int:
        """The current node id (valid until the next safe-point op)."""
        return self.node

    def __repr__(self) -> str:
        return f"BddRef({self.node})"


class BddManager:
    """Owner of a BDD node arena and its operator caches.

    All node ids returned by one manager are only meaningful to that
    manager.  Typical use::

        m = BddManager()
        a = m.new_var("a")
        b = m.new_var("b")
        f = m.and_(a, m.not_(b))
        assert m.eval(f, {0: True, 1: False})
    """

    def __init__(self) -> None:
        # Parallel node arrays; slots 0/1 are placeholders for terminals.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [0, 0]
        self._high: List[int] = [0, 0]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        # Specialized apply layer: and/or/xor run dedicated binary
        # recursions with their own (smaller-keyed, commutatively
        # canonicalized) computed tables instead of routing through the
        # generic ite triple.
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        # Interned constant FourVecs (terminal rails only, so entries
        # stay valid across GC and reordering).  Owned here because the
        # vector layer has no per-manager state of its own.
        self._const_vec_cache: Dict[Tuple[int, int, bool], object] = {}
        self._var_names: List[str] = []
        self._var_bdds: List[int] = []
        # Cache instrumentation (repro.obs).  Misses are derived for
        # free: every miss inserts exactly one computed-table entry and
        # the table only shrinks on reorder(), where the length is
        # folded into the epoch base.  Only hits pay an increment, and
        # only on the cache fast path; terminal shortcuts that never
        # consult a cache are counted by neither side.
        self._ite_hits = 0
        self._ite_miss_base = 0
        self._not_hits = 0
        self._not_miss_base = 0
        self._and_hits = 0
        self._and_miss_base = 0
        self._or_hits = 0
        self._or_miss_base = 0
        self._xor_hits = 0
        self._xor_miss_base = 0
        # --- word-level fast-path telemetry (repro.fourval.ops) -------
        # The four-valued operator layer dispatches to pure-integer
        # word-level implementations when operands are fully
        # concrete-known; it reports here so the concrete-hit ratio is
        # one place (the manager travels with every FourVec).
        self.fastpath = True          # SimOptions.no_fastpath clears it
        self._fp_word = 0             # whole operators done word-level
        self._fp_bits = 0             # per-bit constant short-circuits
        self._fp_sym = 0              # operators on the per-bit BDD path
        # --- memory management (safe-point operations) ----------------
        # Knobs are plain attributes so the kernel/CLI can configure a
        # manager after construction; ``None``/``False`` keep the
        # original append-only behaviour.
        self.gc_threshold: Optional[int] = None  # arena growth before GC
        self.dyn_reorder = False          # enable sifting at safe points
        self.reorder_growth = 2.0         # re-sift after this live growth
        self.sift_threshold = 4096        # min arena size worth sifting
        self.sift_max_swap = 1_000_000    # swap budget per sift (cf. CUDD)
        self.sift_max_growth = 1.2        # per-variable growth bound
        self.sift_max_vars = 1000         # variables sifted per pass
        self.sift_converge = False        # repeat passes until no gain
        self._handles: "weakref.WeakSet[BddRef]" = weakref.WeakSet()
        self._root_providers: List[object] = []
        self._last_gc_size = 0            # arena size after the last GC
        self._next_sift_at = 0            # arena size that re-arms sifting
        self._peak = 0                    # high-water mark across GCs
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._gc_seconds = 0.0
        self._reorder_runs = 0
        self._reorder_swaps = 0
        self._reorder_seconds = 0.0
        self._reorder_saved = 0
        # Variables forced to a constant by the resource guard
        # (level -> chosen value); keys follow the order on reorder().
        self._concretized: Dict[int, bool] = {}
        self._concretize_runs = 0
        self._concretize_seconds = 0.0

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------

    @property
    def var_count(self) -> int:
        """Number of variables created so far."""
        return len(self._var_names)

    def new_var(self, name: Optional[str] = None) -> int:
        """Create a fresh variable at the bottom of the order.

        Returns the BDD of the variable itself.  ``name`` is only used
        for diagnostics (:meth:`var_name`, :meth:`to_expr`).
        """
        level = len(self._var_names)
        self._var_names.append(name if name is not None else f"v{level}")
        node = self._mk(level, FALSE, TRUE)
        self._var_bdds.append(node)
        return node

    def var(self, level: int) -> int:
        """Return the BDD for the existing variable at ``level``."""
        try:
            return self._var_bdds[level]
        except IndexError:
            raise BddError(f"unknown variable level {level}") from None

    def var_name(self, level: int) -> str:
        """Return the diagnostic name of the variable at ``level``."""
        try:
            return self._var_names[level]
        except IndexError:
            raise BddError(f"unknown variable level {level}") from None

    def level_of(self, node: int) -> int:
        """Return the level (order position) of ``node``'s top variable."""
        return self._level[node]

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduced)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def cofactors(self, node: int, level: int) -> Tuple[int, int]:
        """Return the (low, high) cofactors of ``node`` w.r.t. ``level``.

        ``level`` must not be below ``node``'s top level.
        """
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # core operators
    # ------------------------------------------------------------------

    #: opcodes for the specialized binary apply (see ``_apply2``)
    _OP_AND = 0
    _OP_OR = 1
    _OP_XOR = 2

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + ¬f·h`` — the universal BDD operator.

        Implemented with an explicit stack (no Python recursion, so deep
        variable orders cannot hit the interpreter recursion limit) and
        with commutative-triple canonicalization: conjunction-shaped
        triples ``ite(f, g, 0)`` and disjunction-shaped triples
        ``ite(f, 1, h)`` are routed to the dedicated :meth:`and_` /
        :meth:`or_` recursions, whose operand-sorted two-key caches
        recognize ``ite(f, g, 0) == ite(g, f, 0)`` as one entry.
        """
        # Terminal and triple reductions (cheap canonicalization that
        # multiplies computed-table hit rates).
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == f:
            g = TRUE
        if h == f:
            h = FALSE
        if g == TRUE:
            if h == FALSE:
                return f
            return self.or_(f, h)
        if h == FALSE:
            return self.and_(f, g)
        cache = self._ite_cache
        key = (f, g, h)
        cached = cache.get(key)
        if cached is not None:
            self._ite_hits += 1
            return cached
        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        results: List[int] = []
        # Frames: (0, f, g, h) expands a triple; (1, key, top) builds a
        # node from the two results produced by its cofactor frames.
        # The high cofactor is pushed *below* the low one so the build
        # frame pops r1 then r0.
        stack: List[Tuple[int, ...]] = [(0, f, g, h)]
        while stack:
            frame = stack.pop()
            if frame[0] == 0:
                _, f, g, h = frame
                if f == TRUE:
                    results.append(g)
                    continue
                if f == FALSE:
                    results.append(h)
                    continue
                if g == h:
                    results.append(g)
                    continue
                if g == f:
                    g = TRUE
                if h == f:
                    h = FALSE
                if g == TRUE:
                    results.append(f if h == FALSE else self.or_(f, h))
                    continue
                if h == FALSE:
                    results.append(self.and_(f, g))
                    continue
                key = (f, g, h)
                cached = cache.get(key)
                if cached is not None:
                    self._ite_hits += 1
                    results.append(cached)
                    continue
                lf, lg, lh = levels[f], levels[g], levels[h]
                top = lf if lf < lg else lg
                if lh < top:
                    top = lh
                if lf == top:
                    f0, f1 = lows[f], highs[f]
                else:
                    f0 = f1 = f
                if lg == top:
                    g0, g1 = lows[g], highs[g]
                else:
                    g0 = g1 = g
                if lh == top:
                    h0, h1 = lows[h], highs[h]
                else:
                    h0 = h1 = h
                stack.append((1, key, top))
                stack.append((0, f1, g1, h1))
                stack.append((0, f0, g0, h0))
            else:
                _, key, top = frame
                r1 = results.pop()
                r0 = results.pop()
                if r0 == r1:
                    result = r0
                else:
                    ukey = (top, r0, r1)
                    result = unique.get(ukey)
                    if result is None:
                        result = len(levels)
                        levels.append(top)
                        lows.append(r0)
                        highs.append(r1)
                        unique[ukey] = result
                cache[key] = result
                results.append(result)
        return results[0]

    def not_(self, f: int) -> int:
        """Boolean complement (explicit stack; cached both directions)."""
        if f <= TRUE:
            return f ^ 1
        cache = self._not_cache
        cached = cache.get(f)
        if cached is not None:
            self._not_hits += 1
            return cached
        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        results: List[int] = []
        stack: List[Tuple[int, int]] = [(0, f)]
        while stack:
            tag, node = stack.pop()
            if tag == 0:
                if node <= TRUE:
                    results.append(node ^ 1)
                    continue
                cached = cache.get(node)
                if cached is not None:
                    self._not_hits += 1
                    results.append(cached)
                    continue
                stack.append((1, node))
                stack.append((0, highs[node]))
                stack.append((0, lows[node]))
            else:
                r1 = results.pop()
                r0 = results.pop()
                if r0 == r1:
                    result = r0
                else:
                    ukey = (levels[node], r0, r1)
                    result = unique.get(ukey)
                    if result is None:
                        result = len(levels)
                        levels.append(levels[node])
                        lows.append(r0)
                        highs.append(r1)
                        unique[ukey] = result
                cache[node] = result
                cache[result] = node
                results.append(result)
        return results[0]

    def _apply2(self, op: int, cache: Dict[Tuple[int, int], int],
                f: int, g: int) -> int:
        """Dedicated binary apply recursion for and/or/xor.

        Explicit-stack post-order walk; operands are kept sorted at
        every step so the computed table is commutatively canonical.
        Terminal short-circuits never touch the cache.  Callers handle
        the top-level terminal cases; ``f``/``g`` here are internal
        nodes with ``f < g``.
        """
        hits = 0
        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        not_ = self.not_
        results: List[int] = []
        stack: List[Tuple[int, ...]] = [(0, f, g)]
        while stack:
            frame = stack.pop()
            if frame[0] == 0:
                _, f, g = frame
                if f > g:
                    f, g = g, f
                # f <= g, so a terminal g implies a terminal f: the
                # f-checks below cover every terminal case.
                if f == FALSE:
                    results.append(FALSE if op == 0 else g)
                    continue
                if f == TRUE:
                    if op == 0:
                        results.append(g)
                    elif op == 1:
                        results.append(TRUE)
                    else:
                        results.append(not_(g))
                    continue
                if f == g:
                    results.append(FALSE if op == 2 else g)
                    continue
                key = (f, g)
                cached = cache.get(key)
                if cached is not None:
                    hits += 1
                    results.append(cached)
                    continue
                lf, lg = levels[f], levels[g]
                top = lf if lf < lg else lg
                if lf == top:
                    f0, f1 = lows[f], highs[f]
                else:
                    f0 = f1 = f
                if lg == top:
                    g0, g1 = lows[g], highs[g]
                else:
                    g0 = g1 = g
                stack.append((1, key, top))
                stack.append((0, f1, g1))
                stack.append((0, f0, g0))
            else:
                _, key, top = frame
                r1 = results.pop()
                r0 = results.pop()
                if r0 == r1:
                    result = r0
                else:
                    ukey = (top, r0, r1)
                    result = unique.get(ukey)
                    if result is None:
                        result = len(levels)
                        levels.append(top)
                        lows.append(r0)
                        highs.append(r1)
                        unique[ukey] = result
                cache[key] = result
                results.append(result)
        if op == 0:
            self._and_hits += hits
        elif op == 1:
            self._or_hits += hits
        else:
            self._xor_hits += hits
        return results[0]

    def and_(self, f: int, g: int) -> int:
        """Conjunction — dedicated apply (operands sorted, own cache)."""
        if f > g:
            f, g = g, f
        if f == FALSE:
            return FALSE
        if f == TRUE or f == g:
            return g
        cached = self._and_cache.get((f, g))
        if cached is not None:
            self._and_hits += 1
            return cached
        return self._apply2(0, self._and_cache, f, g)

    def or_(self, f: int, g: int) -> int:
        """Disjunction — dedicated apply (operands sorted, own cache)."""
        if f > g:
            f, g = g, f
        if f == FALSE or f == g:
            return g
        if f == TRUE:
            return TRUE
        cached = self._or_cache.get((f, g))
        if cached is not None:
            self._or_hits += 1
            return cached
        return self._apply2(1, self._or_cache, f, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or — dedicated apply (operands sorted, own cache)."""
        if f > g:
            f, g = g, f
        if f == FALSE:
            return g
        if f == g:
            return FALSE
        if f == TRUE:
            return self.not_(g)
        cached = self._xor_cache.get((f, g))
        if cached is not None:
            self._xor_hits += 1
            return cached
        return self._apply2(2, self._xor_cache, f, g)

    def xnor(self, f: int, g: int) -> int:
        """Equivalence (complement of the shared xor cache entry)."""
        return self.not_(self.xor(f, g))

    def nand(self, f: int, g: int) -> int:
        """Negated conjunction."""
        return self.not_(self.and_(f, g))

    def nor(self, f: int, g: int) -> int:
        """Negated disjunction."""
        return self.not_(self.or_(f, g))

    def implies(self, f: int, g: int) -> int:
        """Implication ``f → g``."""
        return self.ite(f, g, TRUE)

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of an iterable of functions (TRUE when empty).

        Reduces as a balanced tree rather than a linear fold: wide
        reductions combine neighbours pairwise, which keeps intermediate
        BDDs small and lets repeated subtrees hit the apply cache.
        Absorbing elements (FALSE) still exit early.
        """
        items: List[int] = []
        for node in nodes:
            if node == FALSE:
                return FALSE
            if node != TRUE:
                items.append(node)
        if not items:
            return TRUE
        while len(items) > 1:
            paired: List[int] = []
            for i in range(0, len(items) - 1, 2):
                result = self.and_(items[i], items[i + 1])
                if result == FALSE:
                    return FALSE
                paired.append(result)
            if len(items) & 1:
                paired.append(items[-1])
            items = paired
        return items[0]

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of an iterable of functions (FALSE when empty).

        Balanced-tree reduction; see :meth:`and_all`.
        """
        items: List[int] = []
        for node in nodes:
            if node == TRUE:
                return TRUE
            if node != FALSE:
                items.append(node)
        if not items:
            return FALSE
        while len(items) > 1:
            paired: List[int] = []
            for i in range(0, len(items) - 1, 2):
                result = self.or_(items[i], items[i + 1])
                if result == TRUE:
                    return TRUE
                paired.append(result)
            if len(items) & 1:
                paired.append(items[-1])
            items = paired
        return items[0]

    # ------------------------------------------------------------------
    # restriction / composition / quantification
    # ------------------------------------------------------------------

    def restrict(self, f: int, level: int, value: bool) -> int:
        """Cofactor ``f`` with the variable at ``level`` fixed to ``value``."""
        return self._restrict(f, level, bool(value), {})

    def _restrict(
        self, f: int, level: int, value: bool, memo: Dict[int, int]
    ) -> int:
        node_level = self._level[f]
        if node_level > level:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        if node_level == level:
            result = self._high[f] if value else self._low[f]
        else:
            low = self._restrict(self._low[f], level, value, memo)
            high = self._restrict(self._high[f], level, value, memo)
            result = self._mk(node_level, low, high)
        memo[f] = result
        return result

    def restrict_many(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``f`` under a partial assignment ``{level: value}``."""
        if not assignment:
            return f
        return self._restrict_many(f, assignment, {})

    def _restrict_many(
        self, f: int, assignment: Dict[int, bool], memo: Dict[int, int]
    ) -> int:
        if f <= TRUE:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        level = self._level[f]
        value = assignment.get(level)
        if value is None:
            low = self._restrict_many(self._low[f], assignment, memo)
            high = self._restrict_many(self._high[f], assignment, memo)
            result = self._mk(level, low, high)
        elif value:
            result = self._restrict_many(self._high[f], assignment, memo)
        else:
            result = self._restrict_many(self._low[f], assignment, memo)
        memo[f] = result
        return result

    def compose(self, f: int, level: int, g: int) -> int:
        """Substitute the function ``g`` for the variable at ``level`` in ``f``."""
        return self._compose(f, level, g, {})

    def _compose(self, f: int, level: int, g: int, memo: Dict[int, int]) -> int:
        node_level = self._level[f]
        if node_level > level:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        if node_level == level:
            result = self.ite(g, self._high[f], self._low[f])
        else:
            low = self._compose(self._low[f], level, g, memo)
            high = self._compose(self._high[f], level, g, memo)
            result = self.ite(self.var(node_level), high, low)
        memo[f] = result
        return result

    def exists(self, f: int, levels: Iterable[int]) -> int:
        """Existentially quantify the variables at ``levels`` out of ``f``."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        return self._exists(f, level_set, {})

    def _exists(self, f: int, levels: frozenset, memo: Dict[int, int]) -> int:
        if f <= TRUE:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        level = self._level[f]
        low = self._exists(self._low[f], levels, memo)
        high = self._exists(self._high[f], levels, memo)
        if level in levels:
            result = self.or_(low, high)
        else:
            result = self._mk(level, low, high)
        memo[f] = result
        return result

    def forall(self, f: int, levels: Iterable[int]) -> int:
        """Universally quantify the variables at ``levels`` out of ``f``."""
        return self.not_(self.exists(self.not_(f), levels))

    # ------------------------------------------------------------------
    # evaluation / satisfiability
    # ------------------------------------------------------------------

    def eval(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a total assignment ``{level: value}``.

        Variables missing from ``assignment`` default to ``False`` — the
        convention used when completing an error-trace witness (don't
        care bits are reported as zero, like the paper's resimulation).
        """
        while f > TRUE:
            if assignment.get(self._level[f], False):
                f = self._high[f]
            else:
                f = self._low[f]
        return f == TRUE

    def sat_one(self, f: int) -> Optional[Dict[int, bool]]:
        """Return one satisfying (partial) assignment, or ``None``.

        Only the variables on the chosen path appear in the result;
        absent variables are don't-cares.
        """
        if f == FALSE:
            return None
        cube: Dict[int, bool] = {}
        while f > TRUE:
            if self._high[f] != FALSE:
                cube[self._level[f]] = True
                f = self._high[f]
            else:
                cube[self._level[f]] = False
                f = self._low[f]
        return cube

    def sat_count(self, f: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the total number of manager variables.
        """
        if nvars is None:
            nvars = self.var_count
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << nvars
        memo: Dict[int, int] = {}

        def eff_level(node: int) -> int:
            return nvars if node <= TRUE else self._level[node]

        def count(node: int) -> int:
            # Satisfying assignments over the variables in
            # [level(node), nvars); terminals sit at level nvars.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            cached = memo.get(node)
            if cached is None:
                level = self._level[node]
                low, high = self._low[node], self._high[node]
                cached = count(low) * (1 << (eff_level(low) - level - 1)) + count(
                    high
                ) * (1 << (eff_level(high) - level - 1))
                memo[node] = cached
            return cached

        # Variables ordered above the root are free choices.
        return count(f) * (1 << self._level[f])

    def all_sat(self, f: int, levels: Optional[Sequence[int]] = None) -> Iterator[Dict[int, bool]]:
        """Yield every satisfying assignment of ``f``.

        When ``levels`` is given, each yielded assignment is total over
        exactly those levels (don't-cares expanded); otherwise partial
        path assignments are yielded.
        """
        if f == FALSE:
            return
        if levels is None:
            yield from self._all_paths(f, {})
            return
        level_list = list(levels)

        def expand(index: int, cube: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if index == len(level_list):
                yield dict(cube)
                return
            level = level_list[index]
            if level in cube:
                yield from expand(index + 1, cube)
                return
            for value in (False, True):
                cube[level] = value
                yield from expand(index + 1, cube)
                del cube[level]

        for path in self._all_paths(f, {}):
            yield from expand(0, path)

    def _all_paths(self, f: int, cube: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
        if f == FALSE:
            return
        if f == TRUE:
            yield dict(cube)
            return
        level = self._level[f]
        cube[level] = False
        yield from self._all_paths(self._low[f], cube)
        cube[level] = True
        yield from self._all_paths(self._high[f], cube)
        del cube[level]

    def support(self, f: int) -> Set[int]:
        """Set of variable levels ``f`` depends on."""
        seen: Set[int] = set()
        support: Set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            support.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return support

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def node_count(self, f: int) -> int:
        """Number of internal nodes in ``f`` (terminals excluded)."""
        seen: Set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    @property
    def total_nodes(self) -> int:
        """Nodes currently in the arena (a growth metric).

        Between collections this grows append-only; :meth:`collect`
        compacts it back down to the live count.
        """
        return len(self._level) - 2

    @property
    def peak_nodes(self) -> int:
        """High-water mark of the arena across collections."""
        current = len(self._level) - 2
        return self._peak if self._peak > current else current

    @property
    def ite_cache_hits(self) -> int:
        return self._ite_hits

    @property
    def ite_cache_misses(self) -> int:
        # Every miss stores exactly one computed-table entry, so the
        # count falls out of the table length — no hot-path counter.
        return self._ite_miss_base + len(self._ite_cache)

    @property
    def not_cache_hits(self) -> int:
        return self._not_hits

    @property
    def not_cache_misses(self) -> int:
        # Each miss inserts a complement *pair* (f -> r and r -> f);
        # neither key can pre-exist (a present r -> f implies f -> r
        # was inserted alongside it, which would have been a hit).
        return self._not_miss_base + len(self._not_cache) // 2

    @property
    def apply_cache_hits(self) -> int:
        """Hits across the specialized and/or/xor apply caches."""
        return self._and_hits + self._or_hits + self._xor_hits

    @property
    def apply_cache_misses(self) -> int:
        """Misses across the specialized and/or/xor apply caches."""
        return (self._and_miss_base + len(self._and_cache)
                + self._or_miss_base + len(self._or_cache)
                + self._xor_miss_base + len(self._xor_cache))

    @property
    def fastpath_word_ops(self) -> int:
        """Operators the word-level (fully concrete) fast path handled."""
        return self._fp_word

    @property
    def fastpath_bit_shortcuts(self) -> int:
        """Per-bit constant-cofactor short-circuits on mixed operands."""
        return self._fp_bits

    @property
    def fastpath_symbolic_ops(self) -> int:
        """Operators that fell through to the per-bit BDD path."""
        return self._fp_sym

    def cache_stats(self) -> Dict[str, float]:
        """Cache/arena counters as a flat dict (repro.obs schema).

        Hit rates are fractions in [0, 1]; ``nodes``/``peak_nodes``
        count internal nodes (terminals excluded).
        """
        ite_misses = self.ite_cache_misses
        not_misses = self.not_cache_misses
        apply_hits = self.apply_cache_hits
        apply_misses = self.apply_cache_misses
        ite_total = self._ite_hits + ite_misses
        not_total = self._not_hits + not_misses
        apply_total = apply_hits + apply_misses
        fp_total = self._fp_word + self._fp_sym
        return {
            "ite_hits": self._ite_hits,
            "ite_misses": ite_misses,
            "ite_hit_rate": self._ite_hits / ite_total if ite_total else 0.0,
            "not_hits": self._not_hits,
            "not_misses": not_misses,
            "not_hit_rate": self._not_hits / not_total if not_total else 0.0,
            "apply_hits": apply_hits,
            "apply_misses": apply_misses,
            "apply_hit_rate": apply_hits / apply_total if apply_total else 0.0,
            "fastpath_word_ops": self._fp_word,
            "fastpath_bit_shortcuts": self._fp_bits,
            "fastpath_symbolic_ops": self._fp_sym,
            "fastpath_word_ratio": self._fp_word / fp_total if fp_total
            else 0.0,
            "nodes": self.total_nodes,
            "peak_nodes": self.peak_nodes,
            "var_count": self.var_count,
            "gc_runs": self._gc_runs,
            "gc_reclaimed": self._gc_reclaimed,
            "gc_seconds": self._gc_seconds,
            "reorder_runs": self._reorder_runs,
            "reorder_swaps": self._reorder_swaps,
            "reorder_seconds": self._reorder_seconds,
            "reorder_saved": self._reorder_saved,
            "concretize_runs": self._concretize_runs,
            "concretize_seconds": self._concretize_seconds,
        }

    def attach_metrics(self, registry) -> None:
        """Register live gauges on a :class:`repro.obs.MetricsRegistry`.

        Gauges are callback-backed: they read the manager at snapshot
        time, so attaching costs nothing on the operator hot paths.
        """
        pairs = (
            ("bdd.nodes", "internal nodes in the arena",
             lambda: self.total_nodes),
            ("bdd.peak_nodes", "arena high-water mark across GCs",
             lambda: self.peak_nodes),
            ("bdd.vars", "BDD variables created",
             lambda: self.var_count),
            ("bdd.ite_cache.hits", "ite computed-table hits",
             lambda: self._ite_hits),
            ("bdd.ite_cache.misses", "ite computed-table misses",
             lambda: self.ite_cache_misses),
            ("bdd.not_cache.hits", "not cache hits",
             lambda: self._not_hits),
            ("bdd.not_cache.misses", "not cache misses",
             lambda: self.not_cache_misses),
            ("bdd.apply.hits", "and/or/xor apply-cache hits",
             lambda: self.apply_cache_hits),
            ("bdd.apply.misses", "and/or/xor apply-cache misses",
             lambda: self.apply_cache_misses),
            ("bdd.apply.and.hits", "and apply-cache hits",
             lambda: self._and_hits),
            ("bdd.apply.and.misses", "and apply-cache misses",
             lambda: self._and_miss_base + len(self._and_cache)),
            ("bdd.apply.or.hits", "or apply-cache hits",
             lambda: self._or_hits),
            ("bdd.apply.or.misses", "or apply-cache misses",
             lambda: self._or_miss_base + len(self._or_cache)),
            ("bdd.apply.xor.hits", "xor apply-cache hits",
             lambda: self._xor_hits),
            ("bdd.apply.xor.misses", "xor apply-cache misses",
             lambda: self._xor_miss_base + len(self._xor_cache)),
            ("bdd.gc.runs", "mark-and-sweep collections",
             lambda: self._gc_runs),
            ("bdd.gc.reclaimed_nodes", "dead nodes reclaimed by GC",
             lambda: self._gc_reclaimed),
            ("bdd.gc.live_nodes", "live nodes after the last GC",
             lambda: self._last_gc_size),
            ("bdd.gc.seconds", "wall time spent collecting",
             lambda: self._gc_seconds),
            ("bdd.reorder.runs", "in-place reorders applied",
             lambda: self._reorder_runs),
            ("bdd.reorder.swaps", "adjacent-level swaps while sifting",
             lambda: self._reorder_swaps),
            ("bdd.reorder.seconds", "wall time spent reordering",
             lambda: self._reorder_seconds),
            ("bdd.reorder.nodes_saved", "live-node reduction from sifting",
             lambda: self._reorder_saved),
        )
        for name, help_, fn in pairs:
            registry.gauge(name, help_).set_function(fn)

    def instrument_latency(self, registry, sample_every: int = 64) -> None:
        """Record per-operation latency histograms (opt-in, sampled).

        Wraps :meth:`ite`, :meth:`not_` and the specialized apply
        operators (:meth:`and_`/:meth:`or_`/:meth:`xor`) on *this
        instance* so every ``sample_every``-th top-level call is timed
        into ``bdd.op_seconds{op=...}``.  Nested inner calls (e.g. the
        ``and_`` an ``ite`` delegates a conjunction-shaped triple to)
        pass through untimed (a shared depth counter), so a sample
        measures one whole operator application.  Only instrumented
        managers pay the wrapper cost; plain managers are untouched.
        """
        import time as _time

        hist = registry.histogram(
            "bdd.op_seconds", "top-level BDD operator latency",
            labels=("op",),
        )
        state = {"depth": 0, "n": 0}

        def timed(orig, op_hist):
            def wrapper(*args: int) -> int:
                if state["depth"]:
                    return orig(*args)
                state["n"] += 1
                if state["n"] % sample_every:
                    state["depth"] = 1
                    try:
                        return orig(*args)
                    finally:
                        state["depth"] = 0
                started = _time.perf_counter()
                state["depth"] = 1
                try:
                    return orig(*args)
                finally:
                    state["depth"] = 0
                    op_hist.observe(_time.perf_counter() - started)
            return wrapper

        for name, attr in (("ite", "ite"), ("not", "not_"),
                           ("and", "and_"), ("or", "or_"), ("xor", "xor")):
            orig = getattr(BddManager, attr).__get__(self)
            setattr(self, attr, timed(orig, hist.labels(op=name)))

    def _drop_op_caches(self) -> None:
        """Drop every computed table, folding lengths into miss bases.

        Node ids are about to be (or may already be) invalidated by the
        caller — GC compaction, reordering, or a checkpoint restore —
        so cached entries keyed on old ids must not survive.
        """
        self._ite_miss_base += len(self._ite_cache)
        self._not_miss_base += len(self._not_cache) // 2
        self._and_miss_base += len(self._and_cache)
        self._or_miss_base += len(self._or_cache)
        self._xor_miss_base += len(self._xor_cache)
        self._ite_cache = {}
        self._not_cache = {}
        self._and_cache = {}
        self._or_cache = {}
        self._xor_cache = {}

    def clear_caches(self) -> None:
        """Drop the operator caches (the unique table is kept)."""
        self._drop_op_caches()

    def to_expr(self, f: int) -> str:
        """Render ``f`` as a nested ``ite(...)`` string for debugging."""
        if f == FALSE:
            return "0"
        if f == TRUE:
            return "1"
        name = self._var_names[self._level[f]]
        low = self.to_expr(self._low[f])
        high = self.to_expr(self._high[f])
        if low == "0" and high == "1":
            return name
        if low == "1" and high == "0":
            return f"!{name}"
        return f"ite({name}, {high}, {low})"

    def rebuild(
        self, order: Sequence[int], roots: Iterable[int]
    ) -> Tuple["BddManager", Dict[int, int]]:
        """Re-express ``roots`` in a fresh manager with a new variable order.

        ``order`` lists existing levels in their new order (a
        permutation of ``range(var_count)``).  Returns the new manager
        and a map from each requested old root to its translated node.

        This is *static* reordering: the paper's experiments ran with
        dynamic reordering disabled, but order still matters enormously
        (see ``benchmarks/bench_ordering.py`` for the classic adder
        example), and callers that know their structure — e.g.
        interleaving operand bits — can use this between phases.
        """
        order = list(order)
        if sorted(order) != list(range(self.var_count)):
            raise BddError(
                f"order must be a permutation of range({self.var_count})"
            )
        new = BddManager()
        new_var_bdd: Dict[int, int] = {}
        for old_level in order:
            new_var_bdd[old_level] = new.new_var(self._var_names[old_level])
        memo: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

        def translate(node: int) -> int:
            cached = memo.get(node)
            if cached is not None:
                return cached
            low = translate(self._low[node])
            high = translate(self._high[node])
            result = new.ite(new_var_bdd[self._level[node]], high, low)
            memo[node] = result
            return result

        return new, {root: translate(root) for root in set(roots)}

    # ------------------------------------------------------------------
    # garbage collection / in-place reordering (safe-point operations)
    # ------------------------------------------------------------------
    #
    # Node ids are arena indices, so compaction and in-place reordering
    # renumber them.  Both operations are therefore only legal at *safe
    # points* — when no raw ids live in Python locals of an in-flight
    # operator (the kernel calls them between time steps).  Everything
    # that holds ids across a safe point must be reachable through the
    # handle table (:meth:`ref`) or a registered root provider.

    def ref(self, node: int) -> BddRef:
        """Pin ``node`` with a GC-stable handle (see :class:`BddRef`)."""
        handle = BddRef(self, node)
        self._handles.add(handle)
        return handle

    def register_root_provider(self, provider) -> None:
        """Register an object enumerating live roots for GC/reordering.

        ``provider`` must implement ``bdd_roots() -> Iterable[int]``
        (every node id it holds) and ``bdd_remap(lookup, level_map)``
        where ``lookup`` is a callable taking each previously-yielded
        old id to its new id and ``level_map`` — ``None`` for a pure
        collection — maps old variable levels to their new order
        positions (for state keyed by level, e.g. witness cubes).
        """
        self._root_providers.append(provider)

    def unregister_root_provider(self, provider) -> None:
        """Remove a previously registered root provider."""
        self._root_providers.remove(provider)

    def _iter_roots(self) -> Iterator[int]:
        """Every externally live node: variables, handles, providers."""
        yield from self._var_bdds
        for handle in list(self._handles):
            yield handle.node
        for provider in self._root_providers:
            yield from provider.bdd_roots()

    def collect(self) -> int:
        """Mark-and-sweep: compact the arena down to the live nodes.

        Marks from the registered roots, slides the survivors down
        (children always precede parents in the arena, so one ascending
        pass suffices), rebuilds the unique table, drops the operator
        caches and remaps every handle and root provider.  Returns the
        number of nodes reclaimed.
        """
        started = _time.perf_counter()
        size = len(self._level)
        if size - 2 > self._peak:
            self._peak = size - 2
        lows = self._low
        highs = self._high
        levels = self._level
        marked = bytearray(size)
        marked[FALSE] = marked[TRUE] = 1
        stack: List[int] = []
        handles = list(self._handles)
        for root in self._iter_roots():
            if not marked[root]:
                marked[root] = 1
                stack.append(root)
        while stack:
            node = stack.pop()
            child = lows[node]
            if not marked[child]:
                marked[child] = 1
                stack.append(child)
            child = highs[node]
            if not marked[child]:
                marked[child] = 1
                stack.append(child)
        # Compact in place: ids only ever shrink, and a node's children
        # have smaller ids than the node itself, so by the time a node
        # is moved its children's new ids are already final.
        node_map = list(range(size))
        write = 2
        for node in range(2, size):
            if marked[node]:
                node_map[node] = write
                levels[write] = levels[node]
                lows[write] = node_map[lows[node]]
                highs[write] = node_map[highs[node]]
                write += 1
        del levels[write:]
        del lows[write:]
        del highs[write:]
        self._unique = {
            (levels[node], lows[node], highs[node]): node
            for node in range(2, write)
        }
        # The computed tables are keyed by old ids; fold their lengths
        # into the miss bases (same bookkeeping as clear_caches) so the
        # derived miss counters stay monotonic.
        self._drop_op_caches()
        self._var_bdds = [node_map[node] for node in self._var_bdds]
        for handle in handles:
            handle.node = node_map[handle.node]
        lookup = node_map.__getitem__
        for provider in self._root_providers:
            provider.bdd_remap(lookup, None)
        reclaimed = size - write
        self._last_gc_size = write - 2
        self._gc_runs += 1
        self._gc_reclaimed += reclaimed
        self._gc_seconds += _time.perf_counter() - started
        return reclaimed

    def gc_due(self) -> bool:
        """True when the arena grew ``gc_threshold`` nodes since last GC."""
        threshold = self.gc_threshold
        return (threshold is not None
                and len(self._level) - 2 - self._last_gc_size >= threshold)

    def maybe_collect(self) -> int:
        """Collect iff :meth:`gc_due`; a no-op with the default config.

        The kernel calls this at every safe point.
        """
        if not self.gc_due():
            return 0
        return self.collect()

    def reorder(self, order: Sequence[int]) -> None:
        """Re-express the live graph of *this* manager under a new order.

        ``order`` lists existing levels in their new order (a
        permutation of ``range(var_count)``), exactly like
        :meth:`rebuild` — but instead of returning a fresh manager, the
        rebuilt arena replaces this manager's own, dead nodes are
        dropped as a side effect, and every handle and root provider is
        remapped (``level_map`` tells providers where each old level
        went, for anything keyed by variable level).  Node ids held
        outside the root protocol are invalidated.
        """
        order = list(order)
        if sorted(order) != list(range(self.var_count)):
            raise BddError(
                f"order must be a permutation of range({self.var_count})"
            )
        started = _time.perf_counter()
        before = len(self._level) - 2
        if before > self._peak:
            self._peak = before
        # Translation runs ite() on a scratch manager; its recursion is
        # bounded by the variable count, which can exceed the default
        # interpreter limit on long runs with many symbolic inputs.
        import sys
        need = 2 * self.var_count + 200
        if sys.getrecursionlimit() < need:
            sys.setrecursionlimit(need)
        scratch = BddManager()
        var_bdd = [0] * self.var_count
        level_map = [0] * self.var_count
        for pos, old_level in enumerate(order):
            var_bdd[old_level] = scratch.new_var(self._var_names[old_level])
            level_map[old_level] = pos
        levels = self._level
        lows = self._low
        highs = self._high
        memo: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
        handles = list(self._handles)
        roots = list(self._iter_roots())
        stack: List[int] = []
        for root in roots:
            if root in memo:
                continue
            stack.append(root)
            while stack:
                node = stack[-1]
                if node in memo:
                    stack.pop()
                    continue
                low, high = lows[node], highs[node]
                done = True
                if high not in memo:
                    stack.append(high)
                    done = False
                if low not in memo:
                    stack.append(low)
                    done = False
                if done:
                    memo[node] = scratch.ite(
                        var_bdd[levels[node]], memo[high], memo[low]
                    )
                    stack.pop()
        # Translation litters the scratch arena with superseded
        # intermediate ite results, and translations of *internal* old
        # nodes need not be subgraphs of the translated roots under
        # the new order.  Compact the scratch arena pinning only the
        # external roots, so the adopted arena is exactly their live
        # graph.
        pin = _ReorderPin({root: memo[root] for root in roots})
        scratch.register_root_provider(pin)
        scratch.collect()
        root_map = pin.memo
        # Adopt the scratch arena wholesale.  The old computed tables
        # are keyed by dead ids; their lengths fold into the miss bases
        # to keep the derived counters monotonic (translation work in
        # the scratch manager is maintenance, not workload — its own
        # counters are deliberately dropped).
        self._level = scratch._level
        self._low = scratch._low
        self._high = scratch._high
        self._unique = scratch._unique
        self._drop_op_caches()
        self._var_names = [self._var_names[old] for old in order]
        self._var_bdds = scratch._var_bdds
        for handle in handles:
            handle.node = root_map[handle.node]
        lookup = root_map.__getitem__
        for provider in self._root_providers:
            provider.bdd_remap(lookup, level_map)
        self._concretized = {
            level_map[level]: chosen
            for level, chosen in self._concretized.items()
        }
        self._last_gc_size = len(self._level) - 2
        self._reorder_runs += 1
        self._reorder_seconds += _time.perf_counter() - started

    def sift(self) -> int:
        """One round of dynamic sifting (Rudell); returns nodes saved.

        Collects first (sifting cost scales with live size), then moves
        each variable through the order with adjacent-level swaps on a
        scratch copy of the live graph — bounded by ``sift_max_swap``
        total swaps, ``sift_max_growth`` intermediate growth per
        variable and ``sift_max_vars`` candidates per pass, with
        ``sift_converge`` repeating passes while they improve, the same
        shape as CUDD's ``CUDD_REORDER_SIFT``/``_CONVERGE`` — and
        finally applies the best order found with :meth:`reorder`.
        """
        started = _time.perf_counter()
        self.collect()
        before = len(self._level) - 2
        saved = 0
        if self.var_count >= 2 and before > 0:
            space = _SiftSpace(self)
            space.run()
            self._reorder_swaps += space.swaps
            self._reorder_seconds += _time.perf_counter() - started
            if space.order != list(range(self.var_count)):
                self.reorder(space.order)  # adds its own time share
            saved = before - (len(self._level) - 2)
            if saved > 0:
                self._reorder_saved += saved
        else:
            self._reorder_seconds += _time.perf_counter() - started
        live = len(self._level) - 2
        self._next_sift_at = int(live * self.reorder_growth)
        return saved

    def sift_due(self) -> bool:
        """True when dynamic sifting is armed and the arena outgrew it."""
        if not self.dyn_reorder:
            return False
        trigger = self._next_sift_at
        if trigger < self.sift_threshold:
            trigger = self.sift_threshold
        return len(self._level) - 2 >= trigger

    def maybe_sift(self) -> int:
        """Sift iff :meth:`sift_due`.

        After each sift the trigger re-arms at ``live_nodes *
        reorder_growth`` (never below ``sift_threshold``), so sifting
        runs when the live graph has grown by the configured ratio —
        not on every safe point.
        """
        if not self.sift_due():
            return 0
        return self.sift()

    # ------------------------------------------------------------------
    # concretization (graceful degradation under memory pressure)
    # ------------------------------------------------------------------

    @property
    def concretized(self) -> Dict[int, bool]:
        """Levels the guard has forced to a constant (level -> value)."""
        return dict(self._concretized)

    def _restricted_size(
        self, roots: Sequence[int], level: int, value: bool
    ) -> int:
        """Live node count if every root were cofactored at ``level``.

        Builds the restricted functions in the arena (the junk is
        reclaimed by the ``collect`` that follows a concretization) and
        counts the unique internal nodes reachable from them.
        """
        memo: Dict[int, int] = {}
        seen: Set[int] = set()
        stack: List[int] = []
        for root in roots:
            restricted = self._restrict(root, level, value, memo)
            if restricted > TRUE and restricted not in seen:
                seen.add(restricted)
                stack.append(restricted)
        lows = self._low
        highs = self._high
        while stack:
            node = stack.pop()
            for child in (lows[node], highs[node]):
                if child > TRUE and child not in seen:
                    seen.add(child)
                    stack.append(child)
        return len(seen)

    def concretize(self, level: int, value: Optional[bool] = None) -> bool:
        """Fix the variable at ``level`` to a constant in every live root.

        The graceful-degradation lever (cf. Ryan & Sturton's selective
        concretization): every handle and root-provider reference is
        replaced by its cofactor with ``level`` forced to ``value``,
        then the arena is collected.  Restricting *all* roots with the
        same assignment keeps the state sound — path controls, value
        rails, violation conditions and the ``$random`` invocation
        vectors are all conditioned on the same choice, so error traces
        built afterwards remain witnesses of real runs (the dropped
        half of the space is simply no longer explored).

        When ``value`` is ``None`` the smaller cofactor is chosen by
        sizing both restrictions.  This is a safe-point operation: raw
        node ids outside the root protocol are invalidated.  Returns
        the value chosen.
        """
        if not 0 <= level < self.var_count:
            raise BddError(f"unknown variable level {level}")
        started = _time.perf_counter()
        # Restriction recursion is bounded by the variable count, like
        # reorder translation.
        import sys
        need = 2 * self.var_count + 200
        if sys.getrecursionlimit() < need:
            sys.setrecursionlimit(need)
        handles = list(self._handles)
        roots: List[int] = [handle.node for handle in handles]
        for provider in self._root_providers:
            roots.extend(provider.bdd_roots())
        if value is None:
            high_size = self._restricted_size(roots, level, True)
            low_size = self._restricted_size(roots, level, False)
            value = high_size < low_size
        value = bool(value)
        memo: Dict[int, int] = {}

        def lookup(node: int) -> int:
            return self._restrict(node, level, value, memo)

        for handle in handles:
            handle.node = lookup(handle.node)
        for provider in self._root_providers:
            provider.bdd_remap(lookup, None)
        self._concretized[level] = value
        self._concretize_runs += 1
        # The variable's own node survives (it is pinned by the
        # manager's variable table), so levels stay stable; everything
        # the sizing pass and the restriction built gets swept here.
        self.collect()
        self._concretize_seconds += _time.perf_counter() - started
        return value

    def check_node(self, f: int) -> None:
        """Validate that ``f`` is a node of this manager (for API misuse)."""
        if not isinstance(f, int) or f < 0 or f >= len(self._level):
            raise BddError(f"not a node of this manager: {f!r}")


class _ReorderPin:
    """Pins translated roots while a reorder scratch arena compacts.

    ``memo`` maps old-manager ids to scratch ids; the scratch
    manager's own :meth:`BddManager.collect` rewrites the scratch side
    through this provider so the mapping survives the compaction.
    """

    def __init__(self, memo: Dict[int, int]) -> None:
        self.memo = memo

    def bdd_roots(self) -> Iterable[int]:
        return self.memo.values()

    def bdd_remap(self, lookup, level_map) -> None:
        self.memo = {old: lookup(new) for old, new in self.memo.items()}


class _SiftSpace:
    """Scratch graph for dynamic sifting.

    A mutable copy of a (freshly collected, hence all-live) manager
    arena that supports the classic adjacent-level swap: exchanging
    order positions ``p`` and ``p+1`` only touches nodes at those two
    levels, so a swap costs O(nodes at p) and a full sift explores
    every position for a variable in O(arena) amortized.  Node ids
    never change here — nodes are relabeled and rewritten in place —
    so ``order`` (position → original level) is the only output; the
    owning manager applies it with :meth:`BddManager.reorder`.

    Unlike the manager itself, the scratch graph *is* reference
    counted (``parents``), because swaps must know when a node at the
    lower level dies; roots are pinned with an extra count.
    """

    def __init__(self, mgr: BddManager) -> None:
        self.level = list(mgr._level)
        self.low = list(mgr._low)
        self.high = list(mgr._high)
        size = len(self.level)
        self.nvars = mgr.var_count
        self.order = list(range(self.nvars))     # position -> orig level
        self.pos_of = list(range(self.nvars))    # orig level -> position
        self.buckets: List[Set[int]] = [set() for _ in range(self.nvars)]
        self.parents = [0] * size
        for node in range(2, size):
            self.buckets[self.level[node]].add(node)
            low, high = self.low[node], self.high[node]
            if low > TRUE:
                self.parents[low] += 1
            if high > TRUE:
                self.parents[high] += 1
        for root in mgr._iter_roots():
            if root > TRUE:
                self.parents[root] += 1          # pin
        self.unique: Dict[Tuple[int, int, int], int] = {
            (self.level[node], self.low[node], self.high[node]): node
            for node in range(2, size)
        }
        self.size = size - 2
        self.free: List[int] = []
        self.swaps = 0
        self.max_growth = mgr.sift_max_growth
        self.max_swap = mgr.sift_max_swap
        self.max_vars = mgr.sift_max_vars
        self.converge = mgr.sift_converge

    def swap(self, p: int) -> None:
        """Exchange the variables at order positions ``p`` and ``p+1``."""
        self.swaps += 1
        q = p + 1
        level = self.level
        low = self.low
        high = self.high
        unique = self.unique
        parents = self.parents
        bucket_p = self.buckets[p]
        bucket_q = self.buckets[q]
        upper = list(bucket_p)
        lower = list(bucket_q)
        for node in upper:
            del unique[(p, low[node], high[node])]
        for node in lower:
            del unique[(q, low[node], high[node])]
        # Classify the upper nodes *before* any relabeling: a node
        # interacts with the swap iff a child sits at the lower level.
        work = []
        solitary = []
        for node in upper:
            f0, f1 = low[node], high[node]
            f0w = level[f0] == q
            f1w = level[f1] == q
            if f0w or f1w:
                work.append((node, f0, f1, f0w, f1w))
            else:
                solitary.append(node)
        # Solitary upper nodes are independent of the rising variable:
        # they keep their children and simply move down one position.
        # Their keys go in first so re-expression can share them.
        for node in solitary:
            level[node] = q
            unique[(q, low[node], high[node])] = node
            bucket_p.discard(node)
            bucket_q.add(node)
        # Original lower nodes move up one position wholesale.  (Their
        # new keys cannot collide with re-expressed ones: these
        # children are all at positions >= p+2, a re-expressed node
        # always keeps at least one child at p+1.)
        for node in lower:
            level[node] = p
            unique[(p, low[node], high[node])] = node
            bucket_q.discard(node)
            bucket_p.add(node)
        pending: List[int] = []
        free = self.free

        def decref(node: int) -> None:
            if node > TRUE:
                parents[node] -= 1
                if parents[node] == 0:
                    pending.append(node)

        def mk_lower(lo: int, hi: int) -> int:
            # Find-or-create (q, lo, hi); the caller owns one reference
            # to the returned node.  Sharing with an existing node —
            # including one whose count just hit zero — revives it;
            # the sweep below re-checks counts for exactly that reason.
            if lo == hi:
                return lo
            key = (q, lo, hi)
            node = unique.get(key)
            if node is None:
                if free:
                    node = free.pop()
                    level[node] = q
                    low[node] = lo
                    high[node] = hi
                else:
                    node = len(level)
                    level.append(q)
                    low.append(lo)
                    high.append(hi)
                    parents.append(0)
                unique[key] = node
                bucket_q.add(node)
                if lo > TRUE:
                    parents[lo] += 1
                if hi > TRUE:
                    parents[hi] += 1
                self.size += 1
            return node

        # Re-express interacting nodes over the risen variable:
        #   ite(u, f1, f0) == ite(w, ite(u, f11, f01), ite(u, f10, f00))
        # The node keeps its id (parents above are untouched) but now
        # branches on w; its u-cofactors are fresh/shared lower nodes.
        for node, f0, f1, f0w, f1w in work:
            if f0w:
                f00, f01 = low[f0], high[f0]
            else:
                f00 = f01 = f0
            if f1w:
                f10, f11 = low[f1], high[f1]
            else:
                f10 = f11 = f1
            hi_node = mk_lower(f01, f11)
            if hi_node > TRUE:
                parents[hi_node] += 1
            lo_node = mk_lower(f00, f10)
            if lo_node > TRUE:
                parents[lo_node] += 1
            decref(f0)
            decref(f1)
            low[node] = lo_node
            high[node] = hi_node
            unique[(p, lo_node, hi_node)] = node
        # Sweep nodes orphaned by the re-expression (cascading to
        # their children), skipping any that sharing revived.
        buckets = self.buckets
        while pending:
            node = pending.pop()
            if parents[node] != 0 or level[node] < 0:
                continue
            key = (level[node], low[node], high[node])
            if unique.get(key) == node:
                del unique[key]
            buckets[level[node]].discard(node)
            decref(low[node])
            decref(high[node])
            level[node] = -1
            free.append(node)
            self.size -= 1
        u, w = self.order[p], self.order[q]
        self.order[p], self.order[q] = w, u
        self.pos_of[w] = p
        self.pos_of[u] = q

    def _sift_one(self, pos: int, budget: List[int]) -> None:
        """Move one variable through the order, settle at its best spot."""
        limit = int(self.size * self.max_growth) + 2
        best_size = self.size
        best_pos = pos
        cur = pos
        top = self.nvars - 1
        # Head for the nearer end first (fewer swaps wasted if the
        # sweep aborts on the growth limit).
        phases = ("up", "down") if pos <= top - pos else ("down", "up")
        for phase in phases:
            if phase == "up":
                while cur > 0 and budget[0] > 0 and self.size <= limit:
                    self.swap(cur - 1)
                    budget[0] -= 1
                    cur -= 1
                    if self.size < best_size:
                        best_size = self.size
                        best_pos = cur
            else:
                while cur < top and budget[0] > 0 and self.size <= limit:
                    self.swap(cur)
                    budget[0] -= 1
                    cur += 1
                    if self.size < best_size:
                        best_size = self.size
                        best_pos = cur
        # Return to the best position seen — off budget, since stopping
        # anywhere else would leave a worse order than we started with.
        while cur > best_pos:
            self.swap(cur - 1)
            cur -= 1
        while cur < best_pos:
            self.swap(cur)
            cur += 1

    def run(self) -> None:
        """Sift the largest levels first; optionally repeat to converge."""
        budget = [self.max_swap]
        while True:
            start_size = self.size
            candidates = sorted(
                range(self.nvars),
                key=lambda pos: len(self.buckets[pos]),
                reverse=True,
            )[: self.max_vars]
            # Track candidates by variable, not position: earlier
            # sifts shift the positions of later candidates.
            for var in [self.order[pos] for pos in candidates]:
                if budget[0] <= 0:
                    break
                self._sift_one(self.pos_of[var], budget)
            if not self.converge or budget[0] <= 0 or self.size >= start_size:
                break
