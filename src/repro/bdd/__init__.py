"""A from-scratch hash-consed ROBDD package.

The paper's simulator represents every symbolic expression with BDDs
built by CUDD; this package is the pure-Python substitute.  It provides
a classic reduced ordered BDD with:

* a unique table (hash consing) so equality is pointer equality,
* an ``ite``-based operator core with a computed-table cache,
* restriction, functional composition, quantification,
* satisfiability helpers (``sat_one``, ``sat_count``, ``all_sat``)
  used for error-trace extraction (paper Section 5).

Variable order is the static order of creation; the paper's experiments
explicitly *disabled* dynamic variable reordering, so a static order is
the faithful default.
"""

from repro.bdd.manager import BddManager, FALSE, TRUE

__all__ = ["BddManager", "FALSE", "TRUE"]
