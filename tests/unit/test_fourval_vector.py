"""Unit tests for FourVec construction and structural operations."""

import pytest

from repro.bdd import FALSE, TRUE, BddManager
from repro.errors import FourValueError
from repro.fourval import FourVec


@pytest.fixture
def m():
    return BddManager()


class TestConstruction:
    def test_from_int(self, m):
        v = FourVec.from_int(m, 5, 4)
        assert v.to_int() == 5
        assert v.to_verilog_bits() == "0101"
        assert v.width == 4

    def test_from_int_wraps(self, m):
        assert FourVec.from_int(m, 0x1F, 4).to_int() == 0xF
        assert FourVec.from_int(m, -1, 4).to_int() == 0xF

    def test_from_verilog_bits(self, m):
        v = FourVec.from_verilog_bits(m, "1x0z")
        assert v.to_verilog_bits() == "1x0z"
        assert v.width == 4

    def test_from_verilog_bits_underscore(self, m):
        assert FourVec.from_verilog_bits(m, "10_10").width == 4

    def test_bad_digit(self, m):
        with pytest.raises(FourValueError):
            FourVec.from_verilog_bits(m, "12")

    def test_zero_width_rejected(self, m):
        with pytest.raises(FourValueError):
            FourVec(m, [])

    def test_all_x_all_z(self, m):
        assert FourVec.all_x(m, 3).to_verilog_bits() == "xxx"
        assert FourVec.all_z(m, 3).to_verilog_bits() == "zzz"

    def test_fresh_symbol(self, m):
        v = FourVec.fresh_symbol(m, 4, "s")
        assert not v.is_constant()
        assert v.is_fully_known()
        assert m.var_count == 4

    def test_fresh_symbol_four_valued(self, m):
        v = FourVec.fresh_symbol(m, 2, "s", four_valued=True)
        assert m.var_count == 4
        assert not v.is_fully_known()

    def test_signed_to_int(self, m):
        v = FourVec.from_int(m, 0xF, 4, signed=True)
        assert v.to_int() == -1
        assert v.as_signed(False).to_int() == 15

    def test_to_int_errors(self, m):
        with pytest.raises(FourValueError):
            FourVec.from_verilog_bits(m, "1x").to_int()
        sym = FourVec.fresh_symbol(m, 2, "s")
        with pytest.raises(FourValueError):
            sym.to_int()
        assert sym.to_int_or_none() is None

    def test_repr(self, m):
        assert "01" in repr(FourVec.from_verilog_bits(m, "01"))
        assert "symbolic" in repr(FourVec.fresh_symbol(m, 2, "s"))


class TestStructural:
    def test_resize_truncate(self, m):
        assert FourVec.from_int(m, 0xAB, 8).resize(4).to_int() == 0xB

    def test_resize_zero_extend(self, m):
        assert FourVec.from_int(m, 5, 4).resize(8).to_int() == 5

    def test_resize_sign_extend(self, m):
        v = FourVec.from_int(m, 0xF, 4, signed=True)
        assert v.resize(8).to_verilog_bits() == "11111111"

    def test_resize_noop(self, m):
        v = FourVec.from_int(m, 3, 4)
        assert v.resize(4) is v

    def test_slice(self, m):
        v = FourVec.from_verilog_bits(m, "1100")
        assert v.slice(0, 2).to_verilog_bits() == "00"
        assert v.slice(2, 2).to_verilog_bits() == "11"

    def test_slice_out_of_range_reads_x(self, m):
        v = FourVec.from_int(m, 1, 2)
        assert v.slice(1, 3).to_verilog_bits() == "xx0"

    def test_concat(self, m):
        hi = FourVec.from_verilog_bits(m, "10")
        lo = FourVec.from_verilog_bits(m, "01")
        assert hi.concat(lo).to_verilog_bits() == "1001"

    def test_replicate(self, m):
        v = FourVec.from_verilog_bits(m, "10")
        assert v.replicate(3).to_verilog_bits() == "101010"
        with pytest.raises(FourValueError):
            v.replicate(0)

    def test_equality_and_hash(self, m):
        a = FourVec.from_int(m, 3, 4)
        b = FourVec.from_int(m, 3, 4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != FourVec.from_int(m, 3, 4, signed=True)


class TestMergePrimitives:
    def test_ite_constant_controls(self, m):
        a = FourVec.from_int(m, 1, 2)
        b = FourVec.from_int(m, 2, 2)
        assert a.ite(TRUE, b) == a
        assert a.ite(FALSE, b) == b

    def test_ite_symbolic(self, m):
        c = m.new_var("c")
        a = FourVec.from_int(m, 1, 2)
        b = FourVec.from_int(m, 2, 2)
        merged = a.ite(c, b)
        assert merged.substitute({0: True}).to_int() == 1
        assert merged.substitute({0: False}).to_int() == 2

    def test_ite_width_mismatch(self, m):
        with pytest.raises(FourValueError):
            FourVec.from_int(m, 1, 2).ite(TRUE, FourVec.from_int(m, 1, 3))

    def test_change_condition_constants(self, m):
        a = FourVec.from_int(m, 1, 2)
        b = FourVec.from_int(m, 2, 2)
        assert a.change_condition(a) == FALSE
        assert a.change_condition(b) == TRUE

    def test_change_condition_xz_counts(self, m):
        a = FourVec.from_verilog_bits(m, "x")
        b = FourVec.from_verilog_bits(m, "z")
        assert a.change_condition(b) == TRUE  # x -> z is a change

    def test_change_condition_symbolic(self, m):
        c = m.new_var("c")
        old = FourVec.from_int(m, 0, 1)
        new = FourVec(m, [(c, FALSE)])
        assert old.change_condition(new) == c

    def test_truthy(self, m):
        assert FourVec.from_int(m, 5, 4).truthy() == TRUE
        assert FourVec.from_int(m, 0, 4).truthy() == FALSE
        assert FourVec.from_verilog_bits(m, "000x").truthy() == FALSE
        assert FourVec.from_verilog_bits(m, "001x").truthy() == TRUE
        assert FourVec.from_verilog_bits(m, "zzzz").truthy() == FALSE

    def test_has_xz_known(self, m):
        assert FourVec.from_verilog_bits(m, "10").has_xz() == FALSE
        assert FourVec.from_verilog_bits(m, "1z").has_xz() == TRUE
        assert FourVec.from_int(m, 3, 2).known() == TRUE

    def test_substitute(self, m):
        s = FourVec.fresh_symbol(m, 2, "s")
        assert s.substitute({0: True, 1: False}).to_int() == 1
        assert s.substitute({0: True, 1: True}).to_int() == 3
