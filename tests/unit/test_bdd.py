"""Unit tests for the BDD manager."""

import pytest

from repro.bdd import FALSE, TRUE, BddManager
from repro.errors import BddError


@pytest.fixture
def m():
    return BddManager()


@pytest.fixture
def abc(m):
    return m.new_var("a"), m.new_var("b"), m.new_var("c")


class TestBasics:
    def test_terminals(self, m):
        assert TRUE == 1
        assert FALSE == 0
        assert m.not_(TRUE) == FALSE
        assert m.not_(FALSE) == TRUE

    def test_var_creation(self, m):
        a = m.new_var("a")
        assert m.var(0) == a
        assert m.var_name(0) == "a"
        assert m.var_count == 1

    def test_var_default_name(self, m):
        m.new_var()
        assert m.var_name(0) == "v0"

    def test_unknown_var_raises(self, m):
        with pytest.raises(BddError):
            m.var(3)
        with pytest.raises(BddError):
            m.var_name(3)

    def test_hash_consing(self, m):
        a, b = m.new_var("a"), m.new_var("b")
        assert m.and_(a, b) == m.and_(a, b)
        assert m.and_(a, b) == m.and_(b, a)
        assert m.or_(a, b) == m.or_(b, a)
        assert m.xor(a, b) == m.xor(b, a)

    def test_idempotence_and_identity(self, m, abc):
        a, b, c = abc
        assert m.and_(a, a) == a
        assert m.or_(a, a) == a
        assert m.and_(a, TRUE) == a
        assert m.and_(a, FALSE) == FALSE
        assert m.or_(a, FALSE) == a
        assert m.or_(a, TRUE) == TRUE
        assert m.xor(a, a) == FALSE
        assert m.xor(a, FALSE) == a
        assert m.xnor(a, a) == TRUE

    def test_complementation(self, m, abc):
        a, b, c = abc
        f = m.or_(m.and_(a, b), c)
        assert m.not_(m.not_(f)) == f
        assert m.and_(f, m.not_(f)) == FALSE
        assert m.or_(f, m.not_(f)) == TRUE

    def test_de_morgan(self, m, abc):
        a, b, _ = abc
        assert m.not_(m.and_(a, b)) == m.or_(m.not_(a), m.not_(b))
        assert m.nand(a, b) == m.not_(m.and_(a, b))
        assert m.nor(a, b) == m.not_(m.or_(a, b))

    def test_implies(self, m, abc):
        a, b, _ = abc
        assert m.implies(a, a) == TRUE
        assert m.implies(FALSE, a) == TRUE
        assert m.implies(a, TRUE) == TRUE
        assert m.implies(TRUE, a) == a

    def test_ite_triple_reductions(self, m, abc):
        a, b, _ = abc
        assert m.ite(a, a, b) == m.or_(a, b)
        assert m.ite(a, b, a) == m.and_(a, b)
        assert m.ite(a, TRUE, FALSE) == a
        assert m.ite(a, FALSE, TRUE) == m.not_(a)

    def test_and_all_or_all(self, m, abc):
        a, b, c = abc
        assert m.and_all([a, b, c]) == m.and_(a, m.and_(b, c))
        assert m.or_all([a, b, c]) == m.or_(a, m.or_(b, c))
        assert m.and_all([]) == TRUE
        assert m.or_all([]) == FALSE


class TestEvaluation:
    def test_eval(self, m, abc):
        a, b, c = abc
        f = m.ite(a, b, c)
        assert m.eval(f, {0: True, 1: True, 2: False})
        assert not m.eval(f, {0: True, 1: False, 2: True})
        assert m.eval(f, {0: False, 1: False, 2: True})

    def test_eval_missing_defaults_false(self, m, abc):
        a, _, _ = abc
        assert not m.eval(a, {})
        assert m.eval(m.not_(a), {})

    def test_sat_one_none_for_false(self, m):
        assert m.sat_one(FALSE) is None

    def test_sat_one_satisfies(self, m, abc):
        a, b, c = abc
        f = m.and_(a, m.xor(b, c))
        cube = m.sat_one(f)
        assert m.eval(f, cube)

    def test_sat_count(self, m, abc):
        a, b, c = abc
        assert m.sat_count(TRUE) == 8
        assert m.sat_count(FALSE) == 0
        assert m.sat_count(a) == 4
        assert m.sat_count(m.and_(a, b)) == 2
        assert m.sat_count(m.or_(a, m.or_(b, c))) == 7
        assert m.sat_count(m.xor(a, b)) == 4

    def test_sat_count_var_above_root(self, m, abc):
        # c alone: variables a, b are free
        _, _, c = abc
        assert m.sat_count(c) == 4

    def test_sat_count_explicit_nvars(self, m):
        a = m.new_var("a")
        assert m.sat_count(a, nvars=1) == 1
        assert m.sat_count(TRUE, nvars=5) == 32

    def test_all_sat_partial(self, m, abc):
        a, b, _ = abc
        f = m.and_(a, b)
        cubes = list(m.all_sat(f))
        assert cubes == [{0: True, 1: True}]

    def test_all_sat_expanded(self, m, abc):
        a, b, c = abc
        f = m.and_(a, b)
        full = list(m.all_sat(f, levels=[0, 1, 2]))
        assert len(full) == 2
        for cube in full:
            assert m.eval(f, cube)

    def test_all_sat_count_matches(self, m, abc):
        a, b, c = abc
        f = m.or_(m.and_(a, b), m.xor(b, c))
        full = list(m.all_sat(f, levels=[0, 1, 2]))
        assert len(full) == m.sat_count(f)


class TestStructuralOps:
    def test_restrict(self, m, abc):
        a, b, c = abc
        f = m.ite(a, b, c)
        assert m.restrict(f, 0, True) == b
        assert m.restrict(f, 0, False) == c
        assert m.restrict(f, 2, True) == m.or_(m.and_(a, b), m.not_(a))

    def test_restrict_untouched_var(self, m, abc):
        a, _, _ = abc
        assert m.restrict(a, 2, True) == a

    def test_restrict_many(self, m, abc):
        a, b, c = abc
        f = m.and_(a, m.or_(b, c))
        assert m.restrict_many(f, {0: True, 1: False}) == c
        assert m.restrict_many(f, {0: False}) == FALSE
        assert m.restrict_many(f, {}) == f

    def test_compose(self, m, abc):
        a, b, c = abc
        f = m.and_(a, b)
        # substitute b := c
        assert m.compose(f, 1, c) == m.and_(a, c)
        # substitute a := b|c
        g = m.compose(f, 0, m.or_(b, c))
        assert g == m.and_(m.or_(b, c), b)

    def test_compose_constant(self, m, abc):
        a, b, _ = abc
        f = m.xor(a, b)
        assert m.compose(f, 0, TRUE) == m.not_(b)
        assert m.compose(f, 0, FALSE) == b

    def test_exists(self, m, abc):
        a, b, c = abc
        f = m.and_(a, b)
        assert m.exists(f, [0]) == b
        assert m.exists(f, [0, 1]) == TRUE
        assert m.exists(f, []) == f

    def test_forall(self, m, abc):
        a, b, _ = abc
        f = m.or_(a, b)
        assert m.forall(f, [0]) == b
        assert m.forall(m.and_(a, b), [0]) == FALSE

    def test_support(self, m, abc):
        a, b, c = abc
        assert m.support(m.and_(a, c)) == {0, 2}
        assert m.support(TRUE) == set()
        assert m.support(m.xor(b, b)) == set()

    def test_node_count(self, m, abc):
        a, b, c = abc
        assert m.node_count(TRUE) == 0
        assert m.node_count(a) == 1
        assert m.node_count(m.and_(a, m.and_(b, c))) == 3

    def test_cofactors(self, m, abc):
        a, b, _ = abc
        f = m.and_(a, b)
        low, high = m.cofactors(f, 0)
        assert low == FALSE
        assert high == b
        low, high = m.cofactors(f, -5)  # above top: unchanged
        assert low == f and high == f


class TestIntrospection:
    def test_to_expr(self, m, abc):
        a, b, _ = abc
        assert m.to_expr(TRUE) == "1"
        assert m.to_expr(FALSE) == "0"
        assert m.to_expr(a) == "a"
        assert m.to_expr(m.not_(a)) == "!a"
        assert "ite" in m.to_expr(m.and_(a, b))

    def test_clear_caches_preserves_semantics(self, m, abc):
        a, b, _ = abc
        f = m.and_(a, b)
        m.clear_caches()
        assert m.and_(a, b) == f

    def test_check_node(self, m):
        a = m.new_var("a")
        m.check_node(a)
        with pytest.raises(BddError):
            m.check_node(10**9)
        with pytest.raises(BddError):
            m.check_node("nope")

    def test_total_nodes_grows(self, m, abc):
        a, b, c = abc
        before = m.total_nodes
        m.and_(a, m.or_(b, c))
        assert m.total_nodes > before
