"""Mark-and-sweep GC, stable handles, root providers and sifting.

Unit layer for the BddManager memory-management machinery: collection
reclaims exactly the unreachable arena, handles and provider roots
survive with their truth tables intact, in-place reordering preserves
semantics while renumbering, and sifting actually finds the interleaved
order on the canonical ripple-adder worst case.
"""

import pytest

from repro.bdd import FALSE, TRUE, BddManager
from repro.errors import BddError
from repro.obs.metrics import MetricsRegistry


def fresh(nvars=4):
    mgr = BddManager()
    vs = [mgr.new_var(f"v{i}") for i in range(nvars)]
    return mgr, vs


def truth_table(mgr, node, nvars):
    return tuple(
        mgr.eval(node, {i: bool(mask >> i & 1) for i in range(nvars)})
        for mask in range(1 << nvars)
    )


class TestCollect:
    def test_unreferenced_nodes_are_reclaimed(self):
        mgr, vs = fresh()
        for i in range(3):
            mgr.and_(vs[i], vs[i + 1])  # results dropped immediately
        before = mgr.total_nodes
        reclaimed = mgr.collect()
        assert reclaimed > 0
        assert mgr.total_nodes == before - reclaimed
        stats = mgr.cache_stats()
        assert stats["gc_runs"] == 1
        assert stats["gc_reclaimed"] == reclaimed

    def test_handles_pin_and_follow_nodes(self):
        mgr, vs = fresh()
        f = mgr.xor(mgr.and_(vs[0], vs[1]), vs[2])
        table = truth_table(mgr, f, 4)
        ref = mgr.ref(f)
        mgr.or_(vs[2], vs[3])  # garbage
        mgr.collect()
        # the handle is rewritten in place; its function is unchanged
        assert truth_table(mgr, ref.deref(), 4) == table

    def test_dropping_handle_frees_its_nodes(self):
        mgr, vs = fresh()
        ref = mgr.ref(mgr.and_(mgr.and_(vs[0], vs[1]), vs[2]))
        mgr.collect()
        pinned = mgr.total_nodes
        del ref
        mgr.collect()
        assert mgr.total_nodes < pinned

    def test_var_bdds_always_survive(self):
        mgr, vs = fresh()
        mgr.collect()
        for i in range(4):
            assert mgr.level_of(mgr.var(i)) == i
        assert mgr.eval(mgr.var(2), {2: True})

    def test_terminals_are_stable(self):
        mgr, vs = fresh()
        mgr.and_(vs[0], vs[1])
        mgr.collect()
        assert mgr.and_(vs[0], FALSE) == FALSE
        assert mgr.or_(vs[0], TRUE) == TRUE

    def test_canonicity_after_collect(self):
        # rebuilding the same function after GC must yield the same id
        mgr, vs = fresh()
        ref = mgr.ref(mgr.xor(vs[0], mgr.and_(vs[1], vs[3])))
        mgr.or_(vs[1], vs[2])
        mgr.collect()
        again = mgr.xor(mgr.var(0), mgr.and_(mgr.var(1), mgr.var(3)))
        assert again == ref.deref()

    def test_collect_idempotent_when_everything_live(self):
        mgr, vs = fresh()
        ref = mgr.ref(mgr.and_(vs[0], vs[1]))
        mgr.collect()
        assert mgr.collect() == 0
        assert truth_table(mgr, ref.deref(), 4)[-1] is True


class TestRootProviders:
    class Holder:
        def __init__(self, nodes):
            self.nodes = list(nodes)

        def bdd_roots(self):
            return iter(self.nodes)

        def bdd_remap(self, lookup, level_map):
            self.nodes = [lookup(n) for n in self.nodes]
            self.level_map = level_map

    def test_provider_roots_survive_and_remap(self):
        mgr, vs = fresh()
        f = mgr.or_(mgr.and_(vs[0], vs[1]), vs[3])
        table = truth_table(mgr, f, 4)
        holder = self.Holder([f])
        mgr.register_root_provider(holder)
        mgr.and_(vs[2], vs[3])  # garbage
        mgr.collect()
        assert truth_table(mgr, holder.nodes[0], 4) == table
        assert holder.level_map is None  # pure GC: levels unchanged

    def test_unregistered_provider_roots_die(self):
        mgr, vs = fresh()
        holder = self.Holder([mgr.and_(mgr.and_(vs[0], vs[1]), vs[2])])
        mgr.register_root_provider(holder)
        mgr.collect()
        pinned = mgr.total_nodes
        mgr.unregister_root_provider(holder)
        mgr.collect()
        assert mgr.total_nodes < pinned

    def test_provider_sees_level_map_on_reorder(self):
        mgr, vs = fresh()
        holder = self.Holder([mgr.and_(vs[0], vs[3])])
        mgr.register_root_provider(holder)
        mgr.reorder([3, 2, 1, 0])
        assert list(holder.level_map) == [3, 2, 1, 0]
        # old level 0 ("v0") now sits at position 3
        assert mgr.var_name(3) == "v0"
        assert mgr.eval(holder.nodes[0], {0: True, 3: True})


class TestThresholds:
    def test_gc_due_tracks_growth_since_last_collect(self):
        mgr, vs = fresh()
        mgr.gc_threshold = 8
        while not mgr.gc_due():
            mgr.xor(vs[0], mgr.and_(vs[1], vs[2]))
            mgr.and_(vs[2], vs[3])
        assert mgr.maybe_collect() > 0
        assert not mgr.gc_due()

    def test_no_threshold_means_no_gc(self):
        mgr, vs = fresh()
        assert mgr.gc_threshold is None
        mgr.and_(vs[0], vs[1])
        assert not mgr.gc_due()
        assert mgr.maybe_collect() == 0
        assert mgr.cache_stats()["gc_runs"] == 0

    def test_sift_due_needs_dyn_reorder(self):
        mgr, vs = fresh()
        mgr.sift_threshold = 1
        assert not mgr.sift_due()
        mgr.dyn_reorder = True
        assert mgr.sift_due()
        assert mgr.maybe_sift() >= 0
        # after a sift the next one waits for reorder_growth
        assert not mgr.sift_due()


class TestInPlaceReorder:
    def test_truth_preserved_under_permutation(self):
        mgr, vs = fresh()
        f = mgr.ite(vs[0], mgr.xor(vs[1], vs[2]), vs[3])
        name_table = {}
        for mask in range(16):
            cube = {i: bool(mask >> i & 1) for i in range(4)}
            key = tuple(sorted((mgr.var_name(i), v) for i, v in cube.items()))
            name_table[key] = mgr.eval(f, cube)
        ref = mgr.ref(f)
        mgr.reorder([2, 0, 3, 1])
        level_of = {mgr.var_name(i): i for i in range(4)}
        for key, expected in name_table.items():
            cube = {level_of[name]: v for name, v in key}
            assert mgr.eval(ref.deref(), cube) == expected

    def test_reorder_compacts_dead_nodes_too(self):
        mgr, vs = fresh()
        ref = mgr.ref(mgr.and_(vs[0], vs[1]))
        for i in range(3):
            mgr.xor(vs[i], vs[i + 1])  # garbage
        mgr.reorder([3, 2, 1, 0])
        # live graph after reorder: the 4 var nodes + the AND chain
        assert mgr.total_nodes <= 4 + 2
        level_of = {mgr.var_name(i): i for i in range(4)}
        cube = {i: False for i in range(4)}
        cube[level_of["v0"]] = True
        cube[level_of["v1"]] = True
        assert mgr.eval(ref.deref(), cube) is True

    def test_bad_orders_rejected(self):
        mgr, vs = fresh()
        with pytest.raises(BddError):
            mgr.reorder([0, 1])
        with pytest.raises(BddError):
            mgr.reorder([0, 0, 1, 2])

    def test_counters_and_metrics_gauges(self):
        mgr, vs = fresh()
        registry = MetricsRegistry()
        mgr.attach_metrics(registry)
        mgr.ref(mgr.and_(vs[0], vs[3]))
        mgr.xor(vs[1], vs[2])
        mgr.collect()
        mgr.reorder([1, 0, 2, 3])
        snap = {m["name"]: m["value"]
                for m in registry.snapshot()["metrics"]}
        assert snap["bdd.gc.runs"] == 1
        assert snap["bdd.gc.reclaimed_nodes"] >= 1
        assert snap["bdd.reorder.runs"] == 1
        assert snap["bdd.gc.seconds"] >= 0.0
        assert snap["bdd.reorder.seconds"] >= 0.0


class TestQueryRegression:
    """sat_count / support / eval pinned across GC and reorder."""

    def test_queries_stable_across_churn(self):
        mgr, vs = fresh()
        f = mgr.or_(mgr.and_(vs[0], vs[1]), mgr.xor(vs[1], vs[3]))
        count = mgr.sat_count(f, 4)
        support_names = {mgr.var_name(lv) for lv in mgr.support(f)}
        assert support_names == {"v0", "v1", "v3"}
        evals = {}
        for mask in range(16):
            cube = {i: bool(mask >> i & 1) for i in range(4)}
            key = tuple(sorted(
                (mgr.var_name(i), v) for i, v in cube.items()))
            evals[key] = mgr.eval(f, cube)
        ref = mgr.ref(f)
        mgr.xor(vs[0], vs[2])  # garbage
        mgr.collect()
        mgr.reorder([3, 1, 0, 2])
        mgr.collect()
        node = ref.deref()
        assert mgr.sat_count(node, 4) == count
        assert {mgr.var_name(lv) for lv in mgr.support(node)} == \
            support_names
        level_of = {mgr.var_name(i): i for i in range(4)}
        for key, expected in evals.items():
            cube = {level_of[name]: v for name, v in key}
            assert mgr.eval(node, cube) == expected


def ripple_adder(mgr, a_vars, b_vars):
    """MSB-first carry chain — the classic bad-order showcase."""
    carry = FALSE
    outs = []
    for a, b in zip(a_vars, b_vars):
        outs.append(mgr.xor(mgr.xor(a, b), carry))
        carry = mgr.or_(
            mgr.and_(a, b), mgr.and_(carry, mgr.or_(a, b))
        )
    outs.append(carry)
    return outs


class TestSifting:
    def test_sift_finds_interleaved_adder_order(self):
        mgr = BddManager()
        n = 6
        a = [mgr.new_var(f"a{i}") for i in range(n)]
        b = [mgr.new_var(f"b{i}") for i in range(n)]
        refs = [mgr.ref(s) for s in ripple_adder(mgr, a, b)]
        mgr.collect()
        blocked = mgr.total_nodes
        saved = mgr.sift()
        assert saved > 0
        assert mgr.total_nodes < blocked / 2  # 377 -> 91 in practice
        assert mgr.cache_stats()["reorder_swaps"] > 0
        # sum bit 3 must still be a3 ^ b3 ^ carry3 under any order
        name_level = {mgr.var_name(i): i for i in range(mgr.var_count)}
        s3 = refs[3].deref()
        cube = {level: False for level in range(mgr.var_count)}
        cube[name_level["a3"]] = True
        assert mgr.eval(s3, cube) is True

    def test_sift_respects_max_growth_noop_on_optimal(self):
        mgr = BddManager()
        vs = [mgr.new_var(f"v{i}") for i in range(4)]
        ref = mgr.ref(mgr.and_all(vs))
        mgr.collect()
        before = mgr.total_nodes
        mgr.sift()
        assert mgr.total_nodes <= before
        assert truth_table(mgr, ref.deref(), 4)[0b1111] is True
