"""Unit tests for the structured trace emitter (JSONL + Chrome)."""

import json

from repro.obs.tracer import LANE_EVENT, LANE_SCHED, LANE_STEP, Tracer


def emit_sample(tracer):
    tracer.begin("step", "step", lane=LANE_STEP, sim_time=0)
    tracer.complete("pop:proc", "pop", tracer.now_us(), 12.5,
                    lane=LANE_EVENT, site="tb.p:3", sim_time=0)
    tracer.instant("merge", "sched", lane=LANE_SCHED, site="tb.p:3")
    tracer.counter("queue", depth=4)
    tracer.end("step", "step", lane=LANE_STEP, sim_time=0)


class TestInMemory:
    def test_record_schema(self):
        tracer = Tracer()
        emit_sample(tracer)
        records = tracer.records
        assert [r["ev"] for r in records] == \
            ["begin", "complete", "instant", "counter", "end"]
        for record in records:
            assert set(record) >= {"ev", "name", "cat", "ts_us", "lane"}
        complete = records[1]
        assert complete["dur_us"] == 12.5
        assert complete["args"]["site"] == "tb.p:3"
        begin, end = records[0], records[-1]
        assert begin["args"]["sim_time"] == end["args"]["sim_time"] == 0

    def test_timestamps_monotonic(self):
        tracer = Tracer()
        emit_sample(tracer)
        ts = [r["ts_us"] for r in tracer.records
              if r["ev"] in ("begin", "instant", "end")]
        assert ts == sorted(ts)

    def test_to_chrome_events(self):
        tracer = Tracer()
        emit_sample(tracer)
        events = tracer.to_chrome_events()
        assert [e["ph"] for e in events] == ["B", "X", "i", "C", "E"]
        assert all(e["pid"] == 1 for e in events)
        instant = events[2]
        assert instant["s"] == "t"

    def test_to_us_matches_clock(self):
        import time

        tracer = Tracer()
        assert tracer.to_us(time.perf_counter()) >= 0


class TestFileSinks:
    def test_jsonl_stream(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(jsonl_path=str(path)) as tracer:
            emit_sample(tracer)
            assert tracer.records is None  # streaming, not retained
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert {"ev", "name", "cat", "ts_us", "lane"} <= set(record)

    def test_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "t.json"
        tracer = Tracer(chrome_path=str(path))
        emit_sample(tracer)
        tracer.close()
        document = json.load(open(path))
        events = document["traceEvents"]
        assert [e["ph"] for e in events] == ["B", "X", "i", "C", "E"]
        assert document["displayTimeUnit"] == "ms"

    def test_chrome_trace_valid_when_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        Tracer(chrome_path=str(path)).close()
        assert json.load(open(path))["traceEvents"] == []

    def test_both_sinks_agree(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        tracer = Tracer(jsonl_path=str(jsonl), chrome_path=str(chrome))
        emit_sample(tracer)
        tracer.close()
        jsonl_names = [json.loads(l)["name"]
                       for l in jsonl.read_text().splitlines()]
        chrome_names = [e["name"]
                        for e in json.load(open(chrome))["traceEvents"]]
        assert jsonl_names == chrome_names

    def test_emit_after_close_is_ignored(self, tmp_path):
        path = tmp_path / "t.json"
        tracer = Tracer(chrome_path=str(path))
        tracer.close()
        tracer.instant("late", "sched")
        tracer.close()  # idempotent
        assert json.load(open(path))["traceEvents"] == []

    def test_keep_in_memory_override(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(jsonl_path=str(path), keep_in_memory=True)
        emit_sample(tracer)
        tracer.close()
        assert len(tracer.records) == 5
