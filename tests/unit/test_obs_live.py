"""Unit tests for live telemetry: heartbeat records, status files,
health assessment, and the ``symsim top`` renderer.

The determinism contract is the load-bearing assertion here: two runs
of the same simulation must produce byte-identical
``deterministic_view``\\ s, so CI can hash heartbeat payloads without
tripping over wall clocks, pids, or host RSS.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.obs.live import (
    DEFAULT_STALL_AFTER, SCHEMA, WALL_FIELDS, Heartbeat, assess_health,
    deterministic_view, finalize_status, read_status, scan_status,
    write_status,
)
from repro.obs.top import format_top, stalled_runs


class _Stats:
    def __init__(self, events=0, symbols=0):
        self.events_processed = events
        self.symbols_injected = symbols


class _Mgr:
    def __init__(self, nodes=0, peak=0):
        self.total_nodes = nodes
        self.peak_nodes = peak


class _Design:
    top = "tb"


class _FakeKernel:
    """Just the attribute surface Heartbeat._record reads."""

    def __init__(self, now=0, events=0, nodes=0, peak=0, symbols=0):
        self.now = now
        self.stats = _Stats(events, symbols)
        self.mgr = _Mgr(nodes, peak)
        self.violations = []
        self.design = _Design()


def _drive(heartbeat, steps=10):
    """Advance a fake kernel through ``steps`` safe points."""
    kern = _FakeKernel()
    heartbeat.on_run_start(kern, until=1000)
    for step in range(1, steps + 1):
        kern.now = step * 10
        kern.stats.events_processed = step * 7
        kern.mgr.total_nodes = step * 100
        kern.mgr.peak_nodes = step * 100
        heartbeat.on_safe_point(kern)
    heartbeat.on_run_end(kern, "ok")
    return kern


# ---------------------------------------------------------------------------
# record content + determinism


class TestHeartbeatRecords:
    def test_beats_every_n_safe_points_plus_final(self):
        beats = []
        hb = Heartbeat(callback=beats.append, every=3)
        _drive(hb, steps=10)
        # safe points 3, 6, 9 plus the terminal beat
        assert len(beats) == 4
        assert [b["status"] for b in beats] == \
            ["running", "running", "running", "ok"]
        assert beats[-1]["sim_time"] == 100

    def test_record_has_schema_and_wall_fields(self):
        beats = []
        hb = Heartbeat(callback=beats.append, every=1, name="r1")
        _drive(hb, steps=1)
        record = beats[0]
        assert record["schema"] == SCHEMA
        assert record["name"] == "r1"
        assert WALL_FIELDS <= set(record)
        assert record["until"] == 1000

    def test_name_falls_back_to_design_top(self):
        beats = []
        hb = Heartbeat(callback=beats.append, every=1)
        _drive(hb, steps=1)
        assert beats[0]["name"] == "tb"

    def test_deterministic_view_strips_exactly_wall_fields(self):
        beats = []
        hb = Heartbeat(callback=beats.append, every=1)
        _drive(hb, steps=1)
        view = deterministic_view(beats[0])
        assert not (WALL_FIELDS & set(view))
        assert set(beats[0]) - set(view) == WALL_FIELDS & set(beats[0])

    def test_identical_drives_hash_identically(self):
        def payload_hash():
            beats = []
            hb = Heartbeat(callback=beats.append, every=2, name="same")
            _drive(hb, steps=8)
            views = [deterministic_view(b) for b in beats]
            return hashlib.sha256(
                json.dumps(views, sort_keys=True).encode()).hexdigest()

        assert payload_hash() == payload_hash()

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(every=0)

    def test_last_kept_without_any_sink(self):
        hb = Heartbeat(every=1)
        _drive(hb, steps=2)
        assert hb.last is not None
        assert hb.last["status"] == "ok"
        assert hb.beats == 3


# ---------------------------------------------------------------------------
# status files


class TestStatusFiles:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.json")
        record = {"schema": SCHEMA, "name": "r", "status": "running"}
        write_status(path, record)
        assert read_status(path) == record
        # no stray temp file left behind
        assert sorted(os.listdir(tmp_path)) == ["run.json"]

    def test_read_missing_and_malformed(self, tmp_path):
        assert read_status(str(tmp_path / "nope.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_status(str(bad)) is None
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"schema": "something/else"}))
        assert read_status(str(other)) is None

    def test_scan_directory_sorts_by_name(self, tmp_path):
        for name in ("b", "a", "c"):
            write_status(str(tmp_path / f"{name}.json"),
                         {"schema": SCHEMA, "name": name,
                          "status": "running"})
        (tmp_path / "junk.json").write_text("garbage")
        records = scan_status([str(tmp_path)])
        assert [r["name"] for r in records] == ["a", "b", "c"]

    def test_scan_glob_and_file(self, tmp_path):
        write_status(str(tmp_path / "x.json"),
                     {"schema": SCHEMA, "name": "x", "status": "ok"})
        assert len(scan_status([str(tmp_path / "*.json")])) == 1
        assert len(scan_status([str(tmp_path / "x.json")])) == 1

    def test_heartbeat_writes_status_file(self, tmp_path):
        path = str(tmp_path / "hb.json")
        hb = Heartbeat(path=path, every=5, name="filed")
        _drive(hb, steps=5)
        record = read_status(path)
        assert record["name"] == "filed"
        assert record["status"] == "ok"

    def test_finalize_extends_last_heartbeat(self, tmp_path):
        path = str(tmp_path / "hb.json")
        hb = Heartbeat(path=path, every=1, name="r")
        kern = _FakeKernel(now=50, events=10)
        hb.on_run_start(kern, until=None)
        hb.on_safe_point(kern)
        finalize_status(path, "r", "hang", error="no progress")
        record = read_status(path)
        assert record["status"] == "hang"
        assert record["error"] == "no progress"
        assert record["sim_time"] == 50  # progress kept from last beat

    def test_finalize_without_prior_record(self, tmp_path):
        path = str(tmp_path / "never.json")
        finalize_status(path, "crashy", "crashed", error="boom")
        record = read_status(path)
        assert record["name"] == "crashy"
        assert record["status"] == "crashed"
        assert record["sim_time"] == 0


# ---------------------------------------------------------------------------
# health / stall detection


def _rec(name, status, ts):
    return {"schema": SCHEMA, "name": name, "status": status,
            "ts_unix": ts}


class TestAssessHealth:
    def test_fresh_running_is_not_stalled(self):
        health = assess_health([_rec("a", "running", 1000.0)],
                               now_unix=1005.0, stall_after=30.0)
        assert not health[0].stalled
        assert health[0].age_seconds == pytest.approx(5.0)

    def test_old_running_is_stalled(self):
        health = assess_health([_rec("a", "running", 1000.0)],
                               now_unix=1031.0, stall_after=30.0)
        assert health[0].stalled

    def test_terminal_status_never_stalls(self):
        for status in ("ok", "aborted", "hang", "crashed"):
            health = assess_health([_rec("a", status, 0.0)],
                                   now_unix=1e9, stall_after=1.0)
            assert not health[0].stalled, status

    def test_missing_timestamp_gives_no_age_no_stall(self):
        health = assess_health([{"schema": SCHEMA, "name": "a",
                                 "status": "running"}], now_unix=1.0)
        assert health[0].age_seconds is None
        assert not health[0].stalled

    def test_default_threshold(self):
        assert DEFAULT_STALL_AFTER == 30.0

    def test_stalled_runs_helper_filters(self):
        records = [_rec("ok-run", "ok", 0.0),
                   _rec("stuck", "running", 0.0)]
        stalled = stalled_runs(records, now_unix=100.0, stall_after=30.0)
        assert [row.name for row in stalled] == ["stuck"]


# ---------------------------------------------------------------------------
# the `symsim top` table


class TestFormatTop:
    def test_renders_rows_and_summary(self):
        records = [
            {"schema": SCHEMA, "name": "alpha", "status": "running",
             "ts_unix": 999.0, "sim_time": 40, "until": 100,
             "events_processed": 1234567, "events_per_second": 2500.0,
             "live_nodes": 4200, "rss_mb": 55.0,
             "headroom": {"max_live_nodes": 0.12}, "eta_seconds": 12.0},
            _rec("done", "ok", 999.0),
        ]
        table = format_top(records, now_unix=1000.0, stall_after=30.0)
        assert "alpha" in table and "40/100" in table
        assert "1.2M" in table  # humanized counter
        assert "nodes 12%" in table
        assert "2 runs: 1 running, 1 done, 0 stalled" in table

    def test_stalled_row_tagged(self):
        table = format_top([_rec("stuck", "running", 0.0)],
                           now_unix=100.0, stall_after=30.0)
        assert "STALL" in table
        assert "1 stalled" in table

    def test_empty_scan_message(self):
        assert "(no heartbeat records found)" in \
            format_top([], now_unix=0.0)
