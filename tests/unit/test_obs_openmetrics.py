"""OpenMetrics rendering: golden exposition, spec details, and the
scrape-source composition used by ``symsim serve-metrics``.

The golden file (tests/golden/metrics.om) freezes the full text format
— ``_total`` suffixes, cumulative buckets, escaping, the ``# EOF``
terminator — so an accidental format drift fails loudly instead of
silently breaking every Prometheus scrape.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.live import SCHEMA as HEARTBEAT_SCHEMA
from repro.obs.metrics import (
    OPENMETRICS_CONTENT_TYPE, MetricError, MetricsRegistry,
    render_openmetrics,
)
from repro.obs.serve import build_scrape_source, registry_from_status

GOLDEN = os.path.join(os.path.dirname(__file__), os.pardir, "golden",
                      "metrics.om")


def golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("sim.events_processed", "kernel events processed").inc(1234)
    runs = reg.counter("batch.runs", "runs by outcome", labels=("status",))
    runs.labels(status="ok").inc(3)
    runs.labels(status="assert_failed").inc(1)
    reg.gauge("bdd.live_nodes", "live BDD arena nodes").set(17294)
    reg.gauge("symsim.run.rss_mb",
              'resident set size with "quotes" and \\',
              labels=("run",)).labels(run='gcd "4"').set(35.5)
    hist = reg.histogram("bdd.apply_latency_us", "apply() latency (us)",
                         buckets=[1, 10, 100])
    for value in (0.5, 5, 50, 500):
        hist.observe(value)
    series = reg.series("fig11.live_nodes", "live nodes over time")
    series.sample(0, 100)
    series.sample(10, 250)
    return reg


class TestGolden:
    def test_matches_golden_file(self):
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            expected = handle.read()
        assert golden_registry().to_openmetrics() == expected

    def test_render_is_snapshot_driven(self):
        """Same output from the live registry and its JSON snapshot."""
        reg = golden_registry()
        via_snapshot = render_openmetrics(
            json.loads(json.dumps(reg.snapshot())))
        assert via_snapshot == reg.to_openmetrics()


class TestFormatDetails:
    def test_ends_with_eof(self):
        assert MetricsRegistry().to_openmetrics() == "# EOF\n"

    def test_counter_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("a.b", "help").inc(2)
        text = reg.to_openmetrics()
        assert "# TYPE a_b counter" in text
        assert "a_b_total 2" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", "h", buckets=[1, 2])
        for value in (0.5, 1.5, 99):
            hist.observe(value)
        text = reg.to_openmetrics()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_dotted_names_and_digit_prefix_sanitized(self):
        reg = MetricsRegistry()
        reg.gauge("4bad.name-x", "g").set(1)
        assert "_4bad_name_x 1" in reg.to_openmetrics()

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("g", "g", labels=("l",)) \
            .labels(l='say "hi"\nnow\\').set(1)
        assert 'g{l="say \\"hi\\"\\nnow\\\\"} 1' in reg.to_openmetrics()

    def test_help_escapes_backslash_and_newline_only(self):
        reg = MetricsRegistry()
        reg.gauge("g", 'with "quotes"\nand \\').set(1)
        assert '# HELP g with "quotes"\\nand \\\\' in reg.to_openmetrics()

    def test_invalid_snapshot_rejected(self):
        with pytest.raises(MetricError):
            render_openmetrics({"not": "a snapshot"})
        with pytest.raises(MetricError):
            render_openmetrics([])

    def test_content_type_constant(self):
        assert OPENMETRICS_CONTENT_TYPE.startswith(
            "application/openmetrics-text")


class TestScrapeSource:
    def _status(self, tmp_path, name="r1", status="running"):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps({
            "schema": HEARTBEAT_SCHEMA, "name": name, "status": status,
            "sim_time": 40, "events_processed": 100, "live_nodes": 500,
            "rss_mb": 12.5, "headroom": {"max_live_nodes": 0.25},
        }))
        return str(path)

    def test_registry_from_status_families(self, tmp_path):
        self._status(tmp_path)
        from repro.obs.live import scan_status

        text = registry_from_status(
            scan_status([str(tmp_path)])).to_openmetrics()
        assert 'symsim_run_info{run="r1",status="running"} 1' in text
        assert 'symsim_run_sim_time{run="r1"} 40' in text
        assert 'symsim_run_bdd_live_nodes{run="r1"} 500' in text
        assert 'symsim_run_budget_headroom{budget="max_live_nodes",' \
               'run="r1"} 0.25' in text

    def test_combined_source_single_eof(self, tmp_path):
        self._status(tmp_path)
        metrics_json = tmp_path / "m.json"
        reg = MetricsRegistry()
        reg.counter("x", "x").inc(1)
        metrics_json.write_text(reg.to_json())
        source = build_scrape_source(metrics_json=str(metrics_json),
                                     status_paths=[str(tmp_path)])
        body = source()
        assert body.count("# EOF") == 1
        assert body.endswith("# EOF\n")
        assert "x_total 1" in body
        assert "symsim_run_sim_time" in body

    def test_source_rereads_per_scrape(self, tmp_path):
        path = self._status(tmp_path, status="running")
        source = build_scrape_source(status_paths=[str(tmp_path)])
        assert 'status="running"' in source()
        record = json.loads(open(path).read())
        record["status"] = "ok"
        with open(path, "w") as handle:
            json.dump(record, handle)
        assert 'status="ok"' in source()

    def test_empty_source_still_valid(self):
        assert build_scrape_source()() == "# EOF\n"
