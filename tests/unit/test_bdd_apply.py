"""Apply-layer specialization tests (dedicated and_/or_/xor recursions).

The specialized binary applies, the iterative ``ite``/``not_`` loops and
the balanced ``and_all``/``or_all`` reductions must be *semantically*
identical to the textbook recursive ITE formulation.  Reference truth
is established by exhaustive evaluation over all variable assignments
(the arena is canonical, so semantic equality within one manager means
node-id equality).
"""

import itertools
import random
import sys

import pytest

from repro.bdd import FALSE, TRUE, BddManager


@pytest.fixture
def m():
    return BddManager()


def _random_function(mgr, rng, nvars, depth=4):
    """A random boolean function plus its pure-Python oracle."""
    while mgr.var_count < nvars:
        mgr.new_var()
    if depth == 0 or rng.random() < 0.25:
        choice = rng.randrange(nvars + 2)
        if choice == nvars:
            return FALSE, (lambda env: False)
        if choice == nvars + 1:
            return TRUE, (lambda env: True)
        return mgr.var(choice), (lambda env, c=choice: env[c])
    op = rng.choice(("and", "or", "xor", "not", "ite"))
    f, pf = _random_function(mgr, rng, nvars, depth - 1)
    if op == "not":
        return mgr.not_(f), (lambda env: not pf(env))
    g, pg = _random_function(mgr, rng, nvars, depth - 1)
    if op == "and":
        return mgr.and_(f, g), (lambda env: pf(env) and pg(env))
    if op == "or":
        return mgr.or_(f, g), (lambda env: pf(env) or pg(env))
    if op == "xor":
        return mgr.xor(f, g), (lambda env: pf(env) != pg(env))
    h, ph = _random_function(mgr, rng, nvars, depth - 1)
    return mgr.ite(f, g, h), (
        lambda env: pg(env) if pf(env) else ph(env))


def _assert_semantics(mgr, node, oracle, nvars):
    for values in itertools.product((False, True), repeat=nvars):
        env = dict(enumerate(values))
        assert mgr.eval(node, env) == bool(oracle(env)), (
            f"mismatch at {env}")


class TestApplySemantics:
    """and_/or_/xor against exhaustive truth-table oracles."""

    NVARS = 5

    def test_random_formulas(self, m):
        rng = random.Random(1364)
        for _ in range(40):
            node, oracle = _random_function(m, rng, self.NVARS)
            _assert_semantics(m, node, oracle, self.NVARS)

    def test_binary_ops_vs_ite_identities(self, m):
        rng = random.Random(2001)
        for _ in range(30):
            f, _ = _random_function(m, rng, self.NVARS)
            g, _ = _random_function(m, rng, self.NVARS)
            # The apply results must coincide with their classic ITE
            # formulations node-for-node (canonical arena).
            assert m.and_(f, g) == m.ite(f, g, FALSE)
            assert m.or_(f, g) == m.ite(f, TRUE, g)
            assert m.xor(f, g) == m.ite(f, m.not_(g), g)
            assert m.xnor(f, g) == m.ite(f, g, m.not_(g))

    def test_commutative_canonicalization(self, m):
        rng = random.Random(7)
        for _ in range(20):
            f, _ = _random_function(m, rng, self.NVARS)
            g, _ = _random_function(m, rng, self.NVARS)
            assert m.and_(f, g) == m.and_(g, f)
            assert m.or_(f, g) == m.or_(g, f)
            assert m.xor(f, g) == m.xor(g, f)

    def test_terminal_rules(self, m):
        v = m.new_var("v")
        assert m.and_(v, FALSE) == FALSE
        assert m.and_(v, TRUE) == v
        assert m.and_(v, v) == v
        assert m.or_(v, FALSE) == v
        assert m.or_(v, TRUE) == TRUE
        assert m.or_(v, v) == v
        assert m.xor(v, FALSE) == v
        assert m.xor(v, TRUE) == m.not_(v)
        assert m.xor(v, v) == FALSE
        assert m.not_(m.not_(v)) == v
        assert m.not_(FALSE) == TRUE
        assert m.not_(TRUE) == FALSE

    def test_de_morgan(self, m):
        a, b = m.new_var("a"), m.new_var("b")
        assert m.not_(m.and_(a, b)) == m.or_(m.not_(a), m.not_(b))
        assert m.nand(a, b) == m.not_(m.and_(a, b))
        assert m.nor(a, b) == m.not_(m.or_(a, b))


class TestIterativeDepth:
    """The explicit-stack loops must survive graphs far deeper than the
    Python recursion limit."""

    DEPTH = 1500

    def _deep_chain(self, m, op):
        vars_ = [m.new_var(f"v{i}") for i in range(self.DEPTH)]
        acc = vars_[0]
        for v in vars_[1:]:
            acc = op(acc, v)
        return acc, vars_

    def test_deep_and_or_not(self, m):
        assert self.DEPTH > sys.getrecursionlimit()
        conj, vars_ = self._deep_chain(m, m.and_)
        env = {i: True for i in range(self.DEPTH)}
        assert m.eval(conj, env) is True
        env[self.DEPTH // 2] = False
        assert m.eval(conj, env) is False
        # not_ over the same deep graph.
        neg = m.not_(conj)
        assert m.eval(neg, env) is True
        # or over the negated literals == not(and) (De Morgan at depth).
        disj = FALSE
        for v in vars_:
            disj = m.or_(disj, m.not_(v))
        assert disj == neg

    def test_deep_ite(self, m):
        n = self.DEPTH
        vars_ = [m.new_var(f"v{i}") for i in range(n)]
        conj = m.and_all(vars_)
        other = m.xor(vars_[0], vars_[n - 1])
        # A general (non-delegating) ite whose first operand is deep.
        result = m.ite(conj, other, m.not_(other))
        env = {i: True for i in range(n)}
        assert m.eval(result, env) == m.eval(other, env)
        env[3] = False
        assert m.eval(result, env) == (not m.eval(other, env))


class TestBalancedReduce:
    def test_and_all_or_all_match_fold(self, m):
        rng = random.Random(99)
        nodes = []
        for _ in range(17):
            node, _ = _random_function(m, rng, 5)
            nodes.append(node)
        linear_and = TRUE
        linear_or = FALSE
        for node in nodes:
            linear_and = m.and_(linear_and, node)
            linear_or = m.or_(linear_or, node)
        assert m.and_all(nodes) == linear_and
        assert m.or_all(nodes) == linear_or

    def test_empty_and_units(self, m):
        v = m.new_var("v")
        assert m.and_all([]) == TRUE
        assert m.or_all([]) == FALSE
        assert m.and_all([TRUE, TRUE]) == TRUE
        assert m.or_all([FALSE]) == FALSE
        assert m.and_all([v, TRUE]) == v
        assert m.or_all([v, FALSE]) == v
        assert m.and_all([v, FALSE, v]) == FALSE
        assert m.or_all([v, TRUE, v]) == TRUE

    def test_wide_reduction_is_balanced(self, m):
        # 64 fresh variables: a linear fold would build 63 intermediate
        # conjunctions each containing all previous levels; the balanced
        # tree builds the same final node with far fewer *distinct*
        # intermediate results on wide independent inputs.  Just verify
        # semantics here — counter behaviour is covered below.
        vars_ = [m.new_var(f"w{i}") for i in range(64)]
        conj = m.and_all(vars_)
        env = {i: True for i in range(64)}
        assert m.eval(conj, env) is True
        env[63] = False
        assert m.eval(conj, env) is False


class TestApplyCaches:
    def test_hit_counters(self, m):
        a, b = m.new_var("a"), m.new_var("b")
        c, d = m.new_var("c"), m.new_var("d")
        f = m.xor(a, b)
        g = m.xor(c, d)
        base_h = m.apply_cache_hits
        first = m.and_(f, g)
        miss_after = m.apply_cache_misses
        assert miss_after > 0
        second = m.and_(g, f)          # commuted — must hit, not re-run
        assert second == first
        assert m.apply_cache_hits == base_h + 1
        assert m.apply_cache_misses == miss_after

    def test_stats_keys(self, m):
        a, b = m.new_var("a"), m.new_var("b")
        m.and_(m.xor(a, b), m.or_(a, b))
        stats = m.cache_stats()
        for key in ("apply_hits", "apply_misses", "apply_hit_rate",
                    "fastpath_word_ops", "fastpath_bit_shortcuts",
                    "fastpath_symbolic_ops", "fastpath_word_ratio"):
            assert key in stats
        assert stats["apply_misses"] > 0

    def test_clear_caches_preserves_miss_totals(self, m):
        a, b = m.new_var("a"), m.new_var("b")
        m.and_(m.xor(a, b), m.or_(a, b))
        misses = m.apply_cache_misses
        assert misses > 0
        m.clear_caches()
        assert m.apply_cache_misses == misses
        # Re-running after the drop misses again (fresh cache).
        m.and_(m.xor(a, b), m.or_(a, b))
        assert m.apply_cache_misses > misses

    def test_gc_keeps_semantics(self, m):
        rng = random.Random(5)
        keep = []
        for _ in range(10):
            node, oracle = _random_function(m, rng, 4)
            keep.append((m.ref(node), oracle))
        m.collect()
        for ref, oracle in keep:
            _assert_semantics(m, ref.node, oracle, 4)
        # Caches were rebuilt: new applies still canonical.
        f, g = keep[0][0].node, keep[1][0].node
        assert m.and_(f, g) == m.ite(f, g, FALSE)
