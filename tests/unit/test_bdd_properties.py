"""Property-based tests: BDD operations vs. a brute-force truth table."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import FALSE, TRUE, BddManager

N_VARS = 4


def _truth_table(m, f):
    """Evaluate f on all 2^N_VARS assignments."""
    rows = []
    for bits in itertools.product([False, True], repeat=N_VARS):
        rows.append(m.eval(f, dict(enumerate(bits))))
    return tuple(rows)


@st.composite
def bdd_exprs(draw, depth=4):
    """A random expression tree over N_VARS variables, as a build plan."""
    if depth == 0 or draw(st.booleans()):
        return ("var", draw(st.integers(min_value=0, max_value=N_VARS - 1)))
    op = draw(st.sampled_from(["and", "or", "xor", "not", "ite", "const"]))
    if op == "const":
        return ("const", draw(st.booleans()))
    if op == "not":
        return ("not", draw(bdd_exprs(depth=depth - 1)))
    if op == "ite":
        return ("ite", draw(bdd_exprs(depth=depth - 1)),
                draw(bdd_exprs(depth=depth - 1)),
                draw(bdd_exprs(depth=depth - 1)))
    return (op, draw(bdd_exprs(depth=depth - 1)),
            draw(bdd_exprs(depth=depth - 1)))


def _build(m, plan):
    kind = plan[0]
    if kind == "var":
        return m.var(plan[1])
    if kind == "const":
        return TRUE if plan[1] else FALSE
    if kind == "not":
        return m.not_(_build(m, plan[1]))
    if kind == "ite":
        return m.ite(_build(m, plan[1]), _build(m, plan[2]),
                     _build(m, plan[3]))
    if kind == "and":
        return m.and_(_build(m, plan[1]), _build(m, plan[2]))
    return m.or_(_build(m, plan[1]), _build(m, plan[2]))


def _eval_plan(plan, bits):
    kind = plan[0]
    if kind == "var":
        return bits[plan[1]]
    if kind == "const":
        return plan[1]
    if kind == "not":
        return not _eval_plan(plan[1], bits)
    if kind == "ite":
        return (_eval_plan(plan[2], bits) if _eval_plan(plan[1], bits)
                else _eval_plan(plan[3], bits))
    if kind == "and":
        return _eval_plan(plan[1], bits) and _eval_plan(plan[2], bits)
    return _eval_plan(plan[1], bits) or _eval_plan(plan[2], bits)


def _fresh():
    m = BddManager()
    for i in range(N_VARS):
        m.new_var(f"x{i}")
    return m


@settings(max_examples=200, deadline=None)
@given(bdd_exprs())
def test_bdd_matches_truth_table(plan):
    m = _fresh()
    f = _build(m, plan)
    for bits in itertools.product([False, True], repeat=N_VARS):
        expected = _eval_plan(plan, bits)
        assert m.eval(f, dict(enumerate(bits))) == expected


@settings(max_examples=100, deadline=None)
@given(bdd_exprs(), bdd_exprs())
def test_canonicity(plan_a, plan_b):
    """Semantically equal functions get the same node id."""
    m = _fresh()
    fa, fb = _build(m, plan_a), _build(m, plan_b)
    same = _truth_table(m, fa) == _truth_table(m, fb)
    assert (fa == fb) == same


@settings(max_examples=100, deadline=None)
@given(bdd_exprs())
def test_sat_count_matches_truth_table(plan):
    m = _fresh()
    f = _build(m, plan)
    expected = sum(_truth_table(m, f))
    assert m.sat_count(f, nvars=N_VARS) == expected


@settings(max_examples=100, deadline=None)
@given(bdd_exprs())
def test_sat_one_is_satisfying(plan):
    m = _fresh()
    f = _build(m, plan)
    cube = m.sat_one(f)
    if cube is None:
        assert f == FALSE
    else:
        assert m.eval(f, cube)


@settings(max_examples=100, deadline=None)
@given(bdd_exprs(), st.integers(min_value=0, max_value=N_VARS - 1),
       st.booleans())
def test_restrict_is_cofactor(plan, level, value):
    m = _fresh()
    f = _build(m, plan)
    g = m.restrict(f, level, value)
    for bits in itertools.product([False, True], repeat=N_VARS):
        assignment = dict(enumerate(bits))
        fixed = dict(assignment)
        fixed[level] = value
        assert m.eval(g, assignment) == m.eval(f, fixed)
    assert level not in m.support(g)


@settings(max_examples=100, deadline=None)
@given(bdd_exprs(), st.integers(min_value=0, max_value=N_VARS - 1),
       bdd_exprs())
def test_compose_semantics(plan_f, level, plan_g):
    m = _fresh()
    f, g = _build(m, plan_f), _build(m, plan_g)
    h = m.compose(f, level, g)
    for bits in itertools.product([False, True], repeat=N_VARS):
        assignment = dict(enumerate(bits))
        inner = m.eval(g, assignment)
        assignment_sub = dict(assignment)
        assignment_sub[level] = inner
        assert m.eval(h, assignment) == m.eval(f, assignment_sub)


@settings(max_examples=100, deadline=None)
@given(bdd_exprs(), st.sets(st.integers(min_value=0, max_value=N_VARS - 1)))
def test_exists_forall_duality(plan, levels):
    m = _fresh()
    f = _build(m, plan)
    ex = m.exists(f, levels)
    fa = m.forall(f, levels)
    assert fa == m.not_(m.exists(m.not_(f), levels))
    # forall implies exists
    assert m.implies(fa, ex) == TRUE
