"""The BATCHJRNL/1 journal: request fingerprints, round trips, torn
and corrupt lines, and resume verification."""

from __future__ import annotations

import json

import pytest

from repro.batch import RunRequest
from repro.batch.journal import (
    JOURNAL_SCHEMA, BatchJournal, catalog_sha, read_journal,
    request_fingerprint,
)
from repro.errors import BatchError
from repro.guard import Fault, FaultInjector, ResourceBudgets
from repro.sim import SimOptions

SRC = "module tb; initial $finish; endmodule"


def _fp(**kwargs):
    defaults = dict(name="r", source=SRC)
    defaults.update(kwargs)
    return request_fingerprint(RunRequest(**defaults), "design-fp")


# ---------------------------------------------------------------------------
# fingerprints


class TestRequestFingerprint:
    def test_stable_for_equal_requests(self):
        assert _fp() == _fp()

    def test_semantic_fields_change_it(self):
        base = _fp()
        assert _fp(until=100) != base
        assert _fp(vcd=True) != base
        assert _fp(options=SimOptions(concrete_random=7)) != base
        assert _fp(options=SimOptions(
            budgets=ResourceBudgets(max_events=10))) != base
        # a different design fingerprint changes it too
        assert request_fingerprint(
            RunRequest(name="r", source=SRC), "other-design") != base

    def test_operational_fields_do_not_change_it(self):
        base = _fp()
        assert _fp(options=SimOptions(heartbeat_every=99)) == base
        assert _fp(options=SimOptions(heartbeat_path="/tmp/x.json")) == base
        assert _fp(options=SimOptions(vcd_path="/tmp/w.vcd")) == base
        assert _fp(options=SimOptions(checkpoint_dir="/tmp/ck")) == base
        assert _fp(options=SimOptions(defer_interrupt=True)) == base
        # the compiled tier is bit-identical to the interpreter, so
        # toggling it must not invalidate a resumable journal
        assert _fp(options=SimOptions(compile_tier=False)) == base

    def test_fault_plans_are_fingerprinted(self):
        injector = FaultInjector([Fault("interrupt", at_step=3)])
        with_faults = _fp(options=SimOptions(faults=injector))
        assert with_faults != _fp()
        again = _fp(options=SimOptions(
            faults=FaultInjector([Fault("interrupt", at_step=3)])))
        assert with_faults == again
        # attempt scoping is semantic
        scoped = _fp(options=SimOptions(faults=FaultInjector(
            [Fault("interrupt", at_step=3, on_attempt=1)])))
        assert scoped != with_faults

    def test_request_method_delegates(self):
        request = RunRequest(name="r", source=SRC)
        assert request.fingerprint("design-fp") == \
            request_fingerprint(request, "design-fp")

    def test_catalog_sha_orders_keys(self):
        assert catalog_sha({"a": b"1", "b": b"2"}) == \
            catalog_sha({"b": b"9", "a": b"0"})  # values don't matter
        assert catalog_sha({"a": b""}) != catalog_sha({"c": b""})


# ---------------------------------------------------------------------------
# journal write / read round trips


def _journal(tmp_path, runs=None):
    path = str(tmp_path / "journal.jsonl")
    journal = BatchJournal.create(
        path, runs or {"a": "fp-a", "b": "fp-b"}, "cat-sha")
    return path, journal


class TestJournalRoundTrip:
    def test_round_trip(self, tmp_path):
        path, journal = _journal(tmp_path)
        journal.attempt("a", 1, "start", worker_pid=7)
        journal.attempt("a", 2, "requeue", failure_kind="worker-lost",
                        error="died", worker_pid=7, delay=0.5)
        journal.terminal("a", {"name": "a", "status": "ok"})
        journal.close()

        state = read_journal(path)
        assert state.catalog_sha == "cat-sha"
        assert state.runs == {"a": "fp-a", "b": "fp-b"}
        assert state.terminal == {"a": {"name": "a", "status": "ok"}}
        events = [(r["attempt"], r["event"]) for r in state.attempts["a"]]
        assert events == [(1, "start"), (2, "requeue")]
        assert state.attempts["a"][1]["failure_kind"] == "worker-lost"

    def test_reopen_appends_resume_marker(self, tmp_path):
        path, journal = _journal(tmp_path)
        journal.terminal("a", {"name": "a", "status": "ok"})
        journal.close()
        BatchJournal.reopen(path, restored=1).close()
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert lines[-1] == {"kind": "resume", "restored": 1}
        # a reopen never clobbers earlier records
        assert read_journal(path).terminal["a"]["status"] == "ok"

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path, journal = _journal(tmp_path)
        journal.terminal("a", {"name": "a", "status": "ok"})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "terminal", "run": "b", "outc')
        state = read_journal(path)
        assert set(state.terminal) == {"a"}

    def test_corrupt_middle_line_is_an_error(self, tmp_path):
        path, journal = _journal(tmp_path)
        journal.terminal("a", {"name": "a", "status": "ok"})
        journal.close()
        text = open(path, encoding="utf-8").read().splitlines()
        # corruption must sit *before* the end: a torn line is only
        # forgiven when it is the final append
        text[1] = "{broken"
        text.append(json.dumps({"kind": "terminal", "run": "b",
                                "outcome": {}}))
        open(path, "w", encoding="utf-8").write("\n".join(text) + "\n")
        with pytest.raises(BatchError, match="corrupt at line 2"):
            read_journal(path)

    def test_missing_empty_and_headerless_files(self, tmp_path):
        with pytest.raises(BatchError, match="cannot read"):
            read_journal(str(tmp_path / "nope.jsonl"))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(BatchError, match="is empty"):
            read_journal(str(empty))
        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text('{"kind": "terminal", "run": "a", '
                              '"outcome": {}}\n')
        with pytest.raises(BatchError, match="header"):
            read_journal(str(headerless))

    def test_unsupported_schema_is_refused(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"kind": "header", "schema": "BATCHJRNL/99", "runs": {}}) + "\n")
        with pytest.raises(BatchError, match="unsupported schema"):
            read_journal(str(path))


# ---------------------------------------------------------------------------
# resume verification


class TestVerify:
    def _state(self, tmp_path):
        path, journal = _journal(tmp_path)
        journal.close()
        return read_journal(path)

    def test_matching_manifest_passes(self, tmp_path):
        state = self._state(tmp_path)
        state.verify({"a": "fp-a", "b": "fp-b"}, "cat-sha")

    def test_run_set_mismatch(self, tmp_path):
        state = self._state(tmp_path)
        with pytest.raises(BatchError, match="run set differs") as err:
            state.verify({"a": "fp-a", "c": "fp-c"}, "cat-sha")
        assert "\n" not in str(err.value)  # single-line contract

    def test_fingerprint_mismatch(self, tmp_path):
        state = self._state(tmp_path)
        with pytest.raises(BatchError, match="fingerprint changed") as err:
            state.verify({"a": "fp-a", "b": "fp-EDITED"}, "cat-sha")
        assert "\n" not in str(err.value)

    def test_catalog_mismatch(self, tmp_path):
        state = self._state(tmp_path)
        with pytest.raises(BatchError, match="design catalog changed"):
            state.verify({"a": "fp-a", "b": "fp-b"}, "other-cat")
