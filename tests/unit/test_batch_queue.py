"""The durable batch queue in isolation: RetryPolicy validation and
deterministic backoff, lease lifecycle, requeue/quarantine routing."""

from __future__ import annotations

import pytest

from repro.batch.queue import JobQueue, Lease, RetryPolicy
from repro.errors import BatchError


class _Req:
    """Stand-in for a RunRequest: the queue only reads .name."""

    def __init__(self, name):
        self.name = name


def _queue(names=("a", "b"), **policy_kwargs):
    policy = RetryPolicy(**policy_kwargs)
    return JobQueue([(_Req(n), f"fp-{n}") for n in names], policy)


# ---------------------------------------------------------------------------
# RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(BatchError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(BatchError):
            RetryPolicy(backoff_base=-1)
        with pytest.raises(BatchError):
            RetryPolicy(jitter_frac=1.5)
        with pytest.raises(BatchError):
            RetryPolicy(lease_timeout=0)
        # ok/assert_failed are verdicts, never retryable failures
        with pytest.raises(BatchError):
            RetryPolicy(retry_statuses={"ok"})
        with pytest.raises(BatchError):
            RetryPolicy(retry_statuses=["assert_failed"])

    def test_retry_statuses_normalized_to_frozenset(self):
        policy = RetryPolicy(retry_statuses=["aborted", "hang"])
        assert policy.retry_statuses == frozenset({"aborted", "hang"})

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_cap=2.0, seed=7)
        # first attempt never waits
        assert policy.backoff_delay("r", 1) == 0.0
        # same (seed, name, attempt) -> same delay, bit for bit
        assert policy.backoff_delay("r", 2) == policy.backoff_delay("r", 2)
        # different runs decorrelate
        assert policy.backoff_delay("r", 2) != policy.backoff_delay("s", 2)
        # capped exponential, within the jitter band around the cap
        late = policy.backoff_delay("r", 9)
        assert late <= 2.0 * (1 + policy.jitter_frac)
        assert late >= 2.0 * (1 - policy.jitter_frac)

    def test_backoff_without_jitter_is_pure_exponential(self):
        policy = RetryPolicy(backoff_base=0.25, backoff_cap=100.0,
                             jitter_frac=0.0)
        assert policy.backoff_delay("x", 2) == 0.25
        assert policy.backoff_delay("x", 3) == 0.5
        assert policy.backoff_delay("x", 4) == 1.0

    def test_zero_base_disables_backoff(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert policy.backoff_delay("x", 5) == 0.0


# ---------------------------------------------------------------------------
# JobQueue lifecycle


class TestJobQueue:
    def test_lease_and_complete(self):
        queue = _queue(("a", "b"))
        assert not queue.finished()
        assert sorted(queue.pending_names()) == ["a", "b"]
        lease = queue.lease(worker_id=0, worker_pid=123)
        assert isinstance(lease, Lease)
        assert lease.name == "a" and lease.attempt == 1
        assert lease.worker_pid == 123

        class Outcome:
            pass

        outcome = Outcome()
        queue.complete("a", outcome)
        assert outcome.attempts == 1
        assert outcome.failure_history == []
        assert queue.outcomes["a"] is outcome
        assert queue.pending_names() == ["b"]
        assert not queue.finished()
        queue.lease(1, 456)
        queue.complete("b", Outcome())
        assert queue.finished()

    def test_lease_returns_none_when_nothing_ready(self):
        queue = _queue(("a",))
        queue.lease(0, 1)
        assert queue.lease(1, 2) is None

    def test_fail_requeues_with_history_then_quarantines(self):
        queue = _queue(("a",), max_attempts=3, backoff_base=0.0)
        queue.lease(0, 11)
        first = queue.fail("a", "worker-lost", "boom", worker_pid=11)
        assert first == {"action": "requeue", "attempt": 2, "delay": 0.0}
        assert queue.requeued == 1
        # the retry dispatch carries attempt 2 and counts as a retry
        lease = queue.lease(0, 12)
        assert lease.attempt == 2
        assert queue.retries == 1
        second = queue.fail("a", "stall-kill", "wedged", worker_pid=12)
        assert second["action"] == "requeue" and second["attempt"] == 3
        queue.lease(0, 13)
        final = queue.fail("a", "worker-lost", "boom again", worker_pid=13)
        assert final["action"] == "quarantine"
        assert final["attempt"] == 3
        kinds = [h["kind"] for h in final["history"]]
        assert kinds == ["worker-lost", "stall-kill", "worker-lost"]
        assert queue.quarantined == ["a"]

        class Outcome:
            pass

        outcome = Outcome()
        queue.complete("a", outcome)
        assert outcome.attempts == 3
        assert len(outcome.failure_history) == 3
        assert queue.finished()

    def test_max_attempts_one_quarantines_immediately(self):
        queue = _queue(("a",), max_attempts=1)
        queue.lease(0, 1)
        assert queue.fail("a", "worker-lost", "x")["action"] == "quarantine"

    def test_backoff_delays_readiness(self):
        queue = _queue(("a",), max_attempts=3, backoff_base=30.0,
                       jitter_frac=0.0)
        queue.lease(0, 1)
        queue.fail("a", "worker-lost", "x")
        # the run is requeued but held back ~30s
        assert not queue.has_ready()
        delay = queue.next_delay()
        assert delay is not None and 29.0 < delay <= 30.0
        assert "a" in queue.pending_names()
        # a clock far in the future promotes it
        import time

        future = time.perf_counter() + 60.0
        assert queue.has_ready(now_mono=future)
        assert queue.lease(0, 2, now_mono=future).attempt == 2

    def test_release_returns_run_unblamed(self):
        queue = _queue(("a",))
        queue.lease(0, 1)
        queue.release("a")
        assert queue.has_ready()
        lease = queue.lease(1, 2)
        # no attempt consumed, no history recorded
        assert lease.attempt == 1
        assert queue.job("a").history == []
        assert queue.retries == 0 and queue.requeued == 0
