"""Unit tests for IEEE-1364 operator semantics over FourVec."""

import pytest

from repro.bdd import FALSE, TRUE, BddManager
from repro.errors import FourValueError
from repro.fourval import FourVec, ops


@pytest.fixture
def m():
    return BddManager()


def vec(m, text):
    return FourVec.from_verilog_bits(m, text)


class TestBitwise:
    def test_not_table(self, m):
        assert ops.bitwise_not(vec(m, "01xz")).to_verilog_bits() == "10xx"

    def test_and_table(self, m):
        x = vec(m, "00001111xxxxzzzz")
        y = vec(m, "01xz01xz01xz01xz")
        assert ops.bitwise_and(x, y).to_verilog_bits() == "000001xx0xxx0xxx"

    def test_or_table(self, m):
        x = vec(m, "00001111xxxxzzzz")
        y = vec(m, "01xz01xz01xz01xz")
        assert ops.bitwise_or(x, y).to_verilog_bits() == "01xx1111x1xxx1xx"

    def test_xor_table(self, m):
        x = vec(m, "00001111xxxxzzzz")
        y = vec(m, "01xz01xz01xz01xz")
        assert ops.bitwise_xor(x, y).to_verilog_bits() == "01xx10xxxxxxxxxx"

    def test_xnor(self, m):
        assert ops.bitwise_xnor(vec(m, "0101"), vec(m, "0011")) \
            .to_verilog_bits() == "1001"

    def test_width_mismatch(self, m):
        with pytest.raises(FourValueError):
            ops.bitwise_and(vec(m, "01"), vec(m, "011"))


class TestReductions:
    def test_reduce_and(self, m):
        assert ops.reduce_and(vec(m, "1111")).to_verilog_bits() == "1"
        assert ops.reduce_and(vec(m, "1101")).to_verilog_bits() == "0"
        assert ops.reduce_and(vec(m, "11x1")).to_verilog_bits() == "x"
        assert ops.reduce_and(vec(m, "10x1")).to_verilog_bits() == "0"

    def test_reduce_or(self, m):
        assert ops.reduce_or(vec(m, "0000")).to_verilog_bits() == "0"
        assert ops.reduce_or(vec(m, "0010")).to_verilog_bits() == "1"
        assert ops.reduce_or(vec(m, "00x0")).to_verilog_bits() == "x"
        assert ops.reduce_or(vec(m, "01x0")).to_verilog_bits() == "1"

    def test_reduce_xor(self, m):
        assert ops.reduce_xor(vec(m, "0110")).to_verilog_bits() == "0"
        assert ops.reduce_xor(vec(m, "0111")).to_verilog_bits() == "1"
        assert ops.reduce_xor(vec(m, "011z")).to_verilog_bits() == "x"

    def test_negated_reductions(self, m):
        assert ops.reduce_nand(vec(m, "11")).to_verilog_bits() == "0"
        assert ops.reduce_nor(vec(m, "00")).to_verilog_bits() == "1"
        assert ops.reduce_xnor(vec(m, "01")).to_verilog_bits() == "0"


class TestLogical:
    def test_logical_not(self, m):
        assert ops.logical_not(vec(m, "00")).to_verilog_bits() == "1"
        assert ops.logical_not(vec(m, "01")).to_verilog_bits() == "0"
        assert ops.logical_not(vec(m, "0x")).to_verilog_bits() == "x"
        assert ops.logical_not(vec(m, "1x")).to_verilog_bits() == "0"

    def test_logical_and(self, m):
        t, f, u = vec(m, "1"), vec(m, "0"), vec(m, "x")
        assert ops.logical_and(t, t).to_verilog_bits() == "1"
        assert ops.logical_and(t, f).to_verilog_bits() == "0"
        assert ops.logical_and(f, u).to_verilog_bits() == "0"
        assert ops.logical_and(t, u).to_verilog_bits() == "x"

    def test_logical_or(self, m):
        t, f, u = vec(m, "1"), vec(m, "0"), vec(m, "x")
        assert ops.logical_or(f, f).to_verilog_bits() == "0"
        assert ops.logical_or(t, u).to_verilog_bits() == "1"
        assert ops.logical_or(f, u).to_verilog_bits() == "x"


class TestEquality:
    def test_equal(self, m):
        assert ops.equal(vec(m, "1010"), vec(m, "1010")).to_verilog_bits() == "1"
        assert ops.equal(vec(m, "1010"), vec(m, "1011")).to_verilog_bits() == "0"
        assert ops.equal(vec(m, "101x"), vec(m, "1010")).to_verilog_bits() == "x"
        # definite difference dominates x
        assert ops.equal(vec(m, "001x"), vec(m, "1010")).to_verilog_bits() == "0"

    def test_not_equal(self, m):
        assert ops.not_equal(vec(m, "10"), vec(m, "01")).to_verilog_bits() == "1"
        assert ops.not_equal(vec(m, "1x"), vec(m, "10")).to_verilog_bits() == "x"

    def test_case_equal(self, m):
        assert ops.case_equal(vec(m, "1x0z"), vec(m, "1x0z")) \
            .to_verilog_bits() == "1"
        assert ops.case_equal(vec(m, "1x0z"), vec(m, "1x00")) \
            .to_verilog_bits() == "0"
        assert ops.case_not_equal(vec(m, "1x"), vec(m, "1z")) \
            .to_verilog_bits() == "1"

    def test_casez_match(self, m):
        # z is a wildcard on either side
        assert ops.casez_match(vec(m, "10"), vec(m, "1z")) == TRUE
        assert ops.casez_match(vec(m, "1x"), vec(m, "1z")) == TRUE
        assert ops.casez_match(vec(m, "1x"), vec(m, "10")) == FALSE
        assert ops.casez_match(vec(m, "11"), vec(m, "10")) == FALSE

    def test_casex_match(self, m):
        assert ops.casex_match(vec(m, "1x"), vec(m, "10")) == TRUE
        assert ops.casex_match(vec(m, "0x"), vec(m, "1z")) == FALSE


class TestRelational:
    def test_unsigned_compare(self, m):
        three, five = FourVec.from_int(m, 3, 4), FourVec.from_int(m, 5, 4)
        assert ops.less_than(three, five).to_int() == 1
        assert ops.less_than(five, three).to_int() == 0
        assert ops.less_equal(three, three).to_int() == 1
        assert ops.greater_than(five, three).to_int() == 1
        assert ops.greater_equal(three, five).to_int() == 0

    def test_signed_compare(self, m):
        minus_one = FourVec.from_int(m, 0xF, 4, signed=True)
        one = FourVec.from_int(m, 1, 4, signed=True)
        assert ops.less_than(minus_one, one).to_int() == 1
        # unsigned if either side is unsigned
        assert ops.less_than(minus_one.as_signed(False), one).to_int() == 0

    def test_compare_xz_is_x(self, m):
        assert ops.less_than(vec(m, "1x"), vec(m, "10")) \
            .to_verilog_bits() == "x"


class TestArithmetic:
    def test_add_sub(self, m):
        a, b = FourVec.from_int(m, 9, 4), FourVec.from_int(m, 8, 4)
        assert ops.add(a, b).to_int() == 1  # wraps at 4 bits
        assert ops.subtract(a, b).to_int() == 1
        assert ops.subtract(b, a).to_int() == 15  # wraps

    def test_negate(self, m):
        assert ops.negate(FourVec.from_int(m, 1, 4)).to_int() == 15
        assert ops.negate(FourVec.from_int(m, 0, 4)).to_int() == 0

    def test_multiply(self, m):
        a, b = FourVec.from_int(m, 7, 6), FourVec.from_int(m, 9, 6)
        assert ops.multiply(a, b).to_int() == 63

    def test_divide_modulo(self, m):
        a, b = FourVec.from_int(m, 37, 8), FourVec.from_int(m, 5, 8)
        assert ops.divide(a, b).to_int() == 7
        assert ops.modulo(a, b).to_int() == 2

    def test_divide_by_zero_is_x(self, m):
        a, z = FourVec.from_int(m, 5, 4), FourVec.from_int(m, 0, 4)
        assert ops.divide(a, z).to_verilog_bits() == "xxxx"
        assert ops.modulo(a, z).to_verilog_bits() == "xxxx"

    def test_signed_divide(self, m):
        minus_six = FourVec.from_int(m, -6, 8, signed=True)
        two = FourVec.from_int(m, 2, 8, signed=True)
        assert ops.divide(minus_six, two).to_int() == -3
        assert ops.modulo(minus_six, two).to_int() == 0
        minus_seven = FourVec.from_int(m, -7, 8, signed=True)
        assert ops.divide(minus_seven, two).to_int() == -3  # trunc toward 0
        assert ops.modulo(minus_seven, two).to_int() == -1  # sign of dividend

    def test_power(self, m):
        a, b = FourVec.from_int(m, 3, 8), FourVec.from_int(m, 4, 8)
        assert ops.power(a, b).to_int() == 81

    def test_xz_poisons_arith(self, m):
        assert ops.add(vec(m, "1x"), vec(m, "01")).to_verilog_bits() == "xx"
        assert ops.multiply(vec(m, "1z"), vec(m, "01")).to_verilog_bits() == "xx"

    def test_symbolic_add_roundtrip(self, m):
        s = FourVec.fresh_symbol(m, 6, "s")
        one = FourVec.from_int(m, 1, 6)
        assert ops.case_equal(ops.subtract(ops.add(s, one), one), s) \
            .to_int() == 1


class TestShifts:
    def test_shift_left(self, m):
        v = FourVec.from_int(m, 0b0011, 4)
        assert ops.shift_left(v, FourVec.from_int(m, 2, 4)).to_int() == 0b1100
        assert ops.shift_left(v, FourVec.from_int(m, 5, 4)).to_int() == 0

    def test_shift_right(self, m):
        v = FourVec.from_int(m, 0b1100, 4)
        assert ops.shift_right(v, FourVec.from_int(m, 2, 4)).to_int() == 0b0011

    def test_arith_shift_right(self, m):
        v = FourVec.from_int(m, 0b1000, 4)
        assert ops.arith_shift_right(v, FourVec.from_int(m, 2, 4)) \
            .to_int() == 0b1110

    def test_symbolic_shift_amount(self, m):
        v = FourVec.from_int(m, 1, 4)
        amt = FourVec.fresh_symbol(m, 2, "k")
        shifted = ops.shift_left(v, amt)
        for k in range(4):
            got = shifted.substitute({0: bool(k & 1), 1: bool(k & 2)})
            assert got.to_int() == (1 << k) & 0xF

    def test_xz_amount_is_x(self, m):
        v = FourVec.from_int(m, 1, 4)
        assert ops.shift_left(v, vec(m, "0x0x")).to_verilog_bits() == "xxxx"


class TestConditional:
    def test_concrete_selector(self, m):
        t, e = vec(m, "1010"), vec(m, "0101")
        assert ops.conditional(vec(m, "1"), t, e) .to_verilog_bits() == "1010"
        assert ops.conditional(vec(m, "0"), t, e).to_verilog_bits() == "0101"

    def test_x_selector_merges(self, m):
        t, e = vec(m, "1010"), vec(m, "1001")
        assert ops.conditional(vec(m, "x"), t, e).to_verilog_bits() == "10xx"


class TestWireResolution:
    def test_z_yields(self, m):
        assert ops.resolve_wire(vec(m, "z"), vec(m, "1")).to_verilog_bits() == "1"
        assert ops.resolve_wire(vec(m, "0"), vec(m, "z")).to_verilog_bits() == "0"
        assert ops.resolve_wire(vec(m, "z"), vec(m, "z")).to_verilog_bits() == "z"

    def test_conflict_is_x(self, m):
        assert ops.resolve_wire(vec(m, "0"), vec(m, "1")).to_verilog_bits() == "x"
        assert ops.resolve_wire(vec(m, "1"), vec(m, "1")).to_verilog_bits() == "1"
        assert ops.resolve_wire(vec(m, "x"), vec(m, "1")).to_verilog_bits() == "x"


class TestEdges:
    def test_posedge_table(self, m):
        def pe(old, new):
            return ops.posedge_condition(vec(m, old), vec(m, new))

        assert pe("0", "1") == TRUE
        assert pe("0", "x") == TRUE
        assert pe("x", "1") == TRUE
        assert pe("1", "0") == FALSE
        assert pe("0", "0") == FALSE
        assert pe("1", "x") == FALSE
        assert pe("z", "1") == TRUE

    def test_negedge_table(self, m):
        def ne(old, new):
            return ops.negedge_condition(vec(m, old), vec(m, new))

        assert ne("1", "0") == TRUE
        assert ne("1", "z") == TRUE
        assert ne("x", "0") == TRUE
        assert ne("0", "1") == FALSE
        assert ne("0", "x") == FALSE
