"""Shard-merge robustness: empty, truncated, and partially garbage
trace shards must warn and be skipped — never crash the merge or
poison the merged trace (satellite of the live-telemetry PR; the
chaos lane kills workers mid-write on purpose)."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.obs.merge import (
    ShardWarning, merge_shards, read_jsonl_records, shard_to_chrome_events,
)


def _record(name="ev", ts=1.0, **extra):
    return {"ev": "instant", "name": name, "cat": "sim", "ts_us": ts,
            **extra}


class TestReadJsonlRecords:
    def test_empty_shard_warns_and_returns_nothing(self, tmp_path):
        shard = tmp_path / "w1.jsonl"
        shard.write_text("")
        with pytest.warns(ShardWarning, match="empty"):
            assert read_jsonl_records(str(shard)) == []

    def test_truncated_last_line_dropped_with_warning(self, tmp_path):
        shard = tmp_path / "w1.jsonl"
        good = _record()
        shard.write_text(json.dumps(good) + "\n" + '{"ev": "instant", "na')
        with pytest.warns(ShardWarning, match="malformed"):
            records = read_jsonl_records(str(shard))
        assert records == [good]

    def test_non_object_lines_dropped(self, tmp_path):
        shard = tmp_path / "w1.jsonl"
        shard.write_text('[1, 2]\n"just a string"\n'
                         + json.dumps(_record()) + "\n")
        with pytest.warns(ShardWarning):
            records = read_jsonl_records(str(shard))
        assert len(records) == 1

    def test_missing_file_warns_not_raises(self, tmp_path):
        with pytest.warns(ShardWarning, match="unreadable"):
            assert read_jsonl_records(str(tmp_path / "gone.jsonl")) == []

    def test_clean_shard_is_silent(self, tmp_path):
        shard = tmp_path / "w1.jsonl"
        shard.write_text(json.dumps(_record()) + "\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(read_jsonl_records(str(shard))) == 1


class TestShardToChromeEvents:
    def test_records_missing_fields_skipped_with_warning(self):
        records = [_record(), {"ev": "instant", "cat": "sim"},
                   {"ev": "instant", "name": "x", "cat": "c",
                    "ts_us": "not-a-number"}]
        with pytest.warns(ShardWarning, match="missing required"):
            events = shard_to_chrome_events(records, pid=7)
        assert len(events) == 1
        assert events[0]["pid"] == 7

    def test_unknown_phase_silently_ignored(self):
        events = shard_to_chrome_events([{"ev": "schema-header"}], pid=1)
        assert events == []


class TestMergeShards:
    def test_merge_survives_damaged_and_missing_shards(self, tmp_path):
        good = tmp_path / "w1.jsonl"
        good.write_text(json.dumps(_record()) + "\n")
        empty = tmp_path / "w2.jsonl"
        empty.write_text("")
        out = tmp_path / "trace.json"
        shards = {
            1: (str(good), 0.0),
            2: (str(empty), 0.0),
            3: (str(tmp_path / "never-written.jsonl"), 0.0),
        }
        with pytest.warns(ShardWarning):
            count = merge_shards(shards, str(out))
        document = json.loads(out.read_text())
        # 3 process_name metadata entries + 1 surviving event
        assert count == 4
        names = [e["name"] for e in document["traceEvents"]]
        assert names.count("process_name") == 3
        assert "ev" in names
