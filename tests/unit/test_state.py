"""Unit tests for the symbolic value store."""

import pytest

from repro.bdd import FALSE, TRUE, BddManager
from repro.errors import SimulationError
from repro.frontend import elaborate, parse_source
from repro.frontend.elaborate import NetInfo
from repro.fourval import FourVec
from repro.sim.state import SimState


@pytest.fixture
def setup():
    design = elaborate(parse_source("""
        module tb;
          reg [3:0] r;
          wire [1:0] w;
          integer i;
          event ev;
          reg [7:0] mem [2:5];
        endmodule
    """))
    mgr = BddManager()
    return mgr, SimState(mgr, design), design


class TestInitialValues:
    def test_reg_x(self, setup):
        _, state, _ = setup
        assert state.value("r").to_verilog_bits() == "xxxx"

    def test_wire_z(self, setup):
        _, state, _ = setup
        assert state.value("w").to_verilog_bits() == "zz"

    def test_event_zero(self, setup):
        _, state, _ = setup
        assert state.value("ev").to_int() == 0

    def test_integer_signed(self, setup):
        _, state, _ = setup
        assert state.value("i").signed

    def test_unknown_name(self, setup):
        _, state, _ = setup
        with pytest.raises(SimulationError):
            state.value("nope")

    def test_memory_not_scalar(self, setup):
        _, state, _ = setup
        with pytest.raises(SimulationError):
            state.value("mem")
        assert state.is_array("mem")


class TestArrays:
    def test_concrete_rw(self, setup):
        mgr, state, _ = setup
        idx = FourVec.from_int(mgr, 3, 4)
        value = FourVec.from_int(mgr, 0xAB, 8)
        change = state.write_array("mem", idx, value, TRUE, 2, 5)
        assert change == TRUE
        assert state.read_array("mem", idx, 2, 5).to_int() == 0xAB

    def test_unwritten_reads_x(self, setup):
        mgr, state, _ = setup
        idx = FourVec.from_int(mgr, 4, 4)
        assert state.read_array("mem", idx, 2, 5).to_verilog_bits() == "x" * 8

    def test_out_of_range(self, setup):
        mgr, state, _ = setup
        bad = FourVec.from_int(mgr, 9, 4)
        assert state.read_array("mem", bad, 2, 5).to_verilog_bits() == "x" * 8
        assert state.write_array(
            "mem", bad, FourVec.from_int(mgr, 1, 8), TRUE, 2, 5
        ) == FALSE

    def test_idempotent_write_no_change(self, setup):
        mgr, state, _ = setup
        idx = FourVec.from_int(mgr, 2, 4)
        value = FourVec.from_int(mgr, 7, 8)
        state.write_array("mem", idx, value, TRUE, 2, 5)
        assert state.write_array("mem", idx, value, TRUE, 2, 5) == FALSE

    def test_guarded_write(self, setup):
        mgr, state, _ = setup
        control = mgr.new_var("c")
        idx = FourVec.from_int(mgr, 2, 4)
        value = FourVec.from_int(mgr, 9, 8)
        state.write_array("mem", idx, value, control, 2, 5)
        word = state.read_array("mem", idx, 2, 5)
        assert word.substitute({0: True}).to_int() == 9
        assert word.substitute({0: False}).to_verilog_bits() == "x" * 8

    def test_symbolic_index_write(self, setup):
        mgr, state, _ = setup
        sym = FourVec.fresh_symbol(mgr, 2, "a")  # levels 0,1
        # address sym+2 covers the whole 2..5 range
        from repro.fourval import ops

        idx = ops.add(sym.resize(4), FourVec.from_int(mgr, 2, 4))
        state.write_array("mem", idx, FourVec.from_int(mgr, 0x55, 8), TRUE,
                          2, 5)
        for word_index in range(2, 6):
            word = state.read_array(
                "mem", FourVec.from_int(mgr, word_index, 4), 2, 5
            )
            offset = word_index - 2
            cube = {0: bool(offset & 1), 1: bool(offset & 2)}
            assert word.substitute(cube).to_int() == 0x55

    def test_zero_control_write_is_noop(self, setup):
        mgr, state, _ = setup
        idx = FourVec.from_int(mgr, 2, 4)
        assert state.write_array(
            "mem", idx, FourVec.from_int(mgr, 1, 8), FALSE, 2, 5
        ) == FALSE
        assert not state.array_words("mem")


class TestRegistration:
    def test_sync_with_design(self, setup):
        mgr, state, design = setup
        design.add_net(NetInfo(full_name="$shadow.99.t", kind="reg", msb=3))
        state.sync_with_design()
        assert state.value("$shadow.99.t").to_verilog_bits() == "xxxx"
