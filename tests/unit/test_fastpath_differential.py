"""Differential tests: fast paths off vs on must be bit-identical.

Every operator in :mod:`repro.fourval.ops` is run twice on the same
manager — once with ``mgr.fastpath`` cleared (generic per-bit BDD
construction) and once with it set (word-level / per-bit shortcut
dispatch).  The arena is hash-consed, so identical functions get
identical node ids: the two results must compare equal *rail by rail*,
including X/Z propagation and signedness.
"""

import random

import pytest

from repro.bdd import FALSE, BddManager
from repro.fourval import FourVec, ops
from repro.fourval.vector import BIT_0, BIT_1, BIT_X, BIT_Z


@pytest.fixture
def m():
    return BddManager()


CONCRETE_BITS = (BIT_0, BIT_1)
FOURVAL_BITS = (BIT_0, BIT_1, BIT_X, BIT_Z)


def rand_vec(m, rng, width, mode, signed=None):
    """Random vector: concrete / four-valued / part-symbolic / symbolic."""
    if signed is None:
        signed = rng.random() < 0.5
    bits = []
    for _ in range(width):
        r = rng.random()
        if mode == "concrete":
            bits.append(rng.choice(CONCRETE_BITS))
        elif mode == "fourval":
            bits.append(rng.choice(FOURVAL_BITS))
        elif mode == "mixed":
            if r < 0.55:
                bits.append(rng.choice(CONCRETE_BITS))
            elif r < 0.7:
                bits.append(rng.choice(FOURVAL_BITS))
            else:
                a = m.new_var()
                b = m.new_var() if rng.random() < 0.25 else FALSE
                bits.append((a, b))
        else:  # symbolic
            a = m.new_var()
            b = m.new_var() if rng.random() < 0.4 else FALSE
            bits.append((a, b))
    return FourVec(m, bits, signed)


def run_both(m, op, *operands):
    """Evaluate ``op`` with the fast path off then on; return both."""
    m.fastpath = False
    try:
        ref = op(*operands)
    finally:
        m.fastpath = True
    fast = op(*operands)
    return ref, fast


def assert_identical(ref, fast):
    if isinstance(ref, FourVec):
        assert isinstance(fast, FourVec)
        assert ref.bits == fast.bits, "rails differ between paths"
        assert ref.signed == fast.signed, "signedness differs"
    else:  # BDD node id (edge conditions, wildcard matches)
        assert ref == fast


# operator, weight class: 'light' ops run on wide/symbolic inputs too,
# 'heavy' ops (quadratic BDD growth when symbolic) stay narrow.
BINARY_OPS = [
    (ops.bitwise_and, "light"),
    (ops.bitwise_or, "light"),
    (ops.bitwise_xor, "light"),
    (ops.bitwise_xnor, "light"),
    (ops.logical_and, "light"),
    (ops.logical_or, "light"),
    (ops.equal, "light"),
    (ops.not_equal, "light"),
    (ops.case_equal, "light"),
    (ops.case_not_equal, "light"),
    (ops.less_than, "light"),
    (ops.greater_than, "light"),
    (ops.less_equal, "light"),
    (ops.greater_equal, "light"),
    (ops.add, "light"),
    (ops.subtract, "light"),
    (ops.resolve_wire, "light"),
    (ops.resolve_wand, "light"),
    (ops.resolve_wor, "light"),
    (ops.shift_left, "light"),
    (ops.shift_right, "light"),
    (ops.arith_shift_right, "light"),
    (ops.multiply, "heavy"),
    (ops.divide, "heavy"),
    (ops.modulo, "heavy"),
    (ops.power, "heavy"),
]

UNARY_OPS = [
    ops.bitwise_not,
    ops.negate,
    ops.logical_not,
    ops.reduce_and,
    ops.reduce_or,
    ops.reduce_xor,
    ops.reduce_nand,
    ops.reduce_nor,
    ops.reduce_xnor,
]

MODES = ("concrete", "fourval", "mixed", "symbolic")


@pytest.mark.parametrize("op,weight", BINARY_OPS,
                         ids=[op.__name__ for op, _ in BINARY_OPS])
def test_binary_differential(m, op, weight):
    rng = random.Random(hash(op.__name__) & 0xFFFF)
    widths = (1, 4, 8) if weight == "light" else (1, 3, 4)
    for width in widths:
        for mode in MODES:
            if weight == "heavy" and mode == "symbolic" and width > 3:
                continue
            for forced_signed in (None, True):
                x = rand_vec(m, rng, width, mode, signed=forced_signed)
                y = rand_vec(m, rng, width, mode, signed=forced_signed)
                ref, fast = run_both(m, op, x, y)
                assert_identical(ref, fast)


@pytest.mark.parametrize("op", UNARY_OPS, ids=[op.__name__ for op in UNARY_OPS])
def test_unary_differential(m, op):
    rng = random.Random(hash(op.__name__) & 0xFFFF)
    for width in (1, 4, 8):
        for mode in MODES:
            for forced_signed in (None, True):
                x = rand_vec(m, rng, width, mode, signed=forced_signed)
                ref, fast = run_both(m, op, x)
                assert_identical(ref, fast)


def test_shift_narrow_amount_differential(m):
    """Shift amounts narrower than the value (the common RTL shape)."""
    rng = random.Random(81)
    for op in (ops.shift_left, ops.shift_right, ops.arith_shift_right):
        for mode in MODES:
            x = rand_vec(m, rng, 8, mode, signed=(op is ops.arith_shift_right))
            amt = rand_vec(m, rng, 3, "concrete" if mode == "symbolic"
                           else mode, signed=False)
            ref, fast = run_both(m, op, x, amt)
            assert_identical(ref, fast)
    # Overshifting: amount >= width.
    x = rand_vec(m, rng, 4, "fourval")
    big = FourVec.from_int(m, 9, 4)
    for op in (ops.shift_left, ops.shift_right, ops.arith_shift_right):
        ref, fast = run_both(m, op, x, big)
        assert_identical(ref, fast)


def test_divide_modulo_special_cases(m):
    """Division-by-zero and the signed most-negative corner."""
    for signed in (False, True):
        for xv in (0, 1, 7, 8, 15):
            x = FourVec.from_int(m, xv, 4, signed)
            zero = FourVec.from_int(m, 0, 4, signed)
            for op in (ops.divide, ops.modulo):
                ref, fast = run_both(m, op, x, zero)
                assert_identical(ref, fast)
                assert fast.bits == (BIT_X,) * 4
    # -8 / -1 at width 4 wraps back to -8.
    neg8 = FourVec.from_int(m, 8, 4, True)
    neg1 = FourVec.from_int(m, 15, 4, True)
    ref, fast = run_both(m, ops.divide, neg8, neg1)
    assert_identical(ref, fast)
    assert fast.to_int() == -8


def test_conditional_differential(m):
    rng = random.Random(4242)
    for mode_c in MODES:
        for mode_v in MODES:
            cond = rand_vec(m, rng, 1, mode_c, signed=False)
            then_v = rand_vec(m, rng, 4, mode_v)
            else_v = rand_vec(m, rng, 4, mode_v)
            ref, fast = run_both(m, ops.conditional, cond, then_v, else_v)
            assert_identical(ref, fast)


def test_pull_z_differential(m):
    rng = random.Random(55)
    for mode in MODES:
        for pull_to_one in (False, True):
            x = rand_vec(m, rng, 6, mode)
            ref, fast = run_both(
                m, lambda v, p=pull_to_one: ops.pull_z(v, p), x)
            assert_identical(ref, fast)


def test_edge_conditions_differential(m):
    rng = random.Random(1999)
    for mode in MODES:
        for op in (ops.posedge_condition, ops.negedge_condition):
            old = rand_vec(m, rng, 1, mode, signed=False)
            new = rand_vec(m, rng, 1, mode, signed=False)
            ref, fast = run_both(m, op, old, new)
            assert_identical(ref, fast)
    # The classic concrete edges.
    zero = FourVec.from_int(m, 0, 1)
    one = FourVec.from_int(m, 1, 1)
    _, rising = run_both(m, ops.posedge_condition, zero, one)
    _, falling = run_both(m, ops.negedge_condition, one, zero)
    from repro.bdd import TRUE
    assert rising == TRUE and falling == TRUE


def test_wildcard_match_differential(m):
    rng = random.Random(77)
    for mode in MODES:
        expr = rand_vec(m, rng, 4, mode, signed=False)
        item = rand_vec(m, rng, 4, "fourval", signed=False)
        for op in (ops.casez_match, ops.casex_match):
            ref, fast = run_both(m, op, expr, item)
            assert_identical(ref, fast)


class TestCounters:
    def test_word_counter(self, m):
        x = FourVec.from_int(m, 5, 8)
        y = FourVec.from_int(m, 3, 8)
        base = m.fastpath_word_ops
        result = ops.add(x, y)
        assert m.fastpath_word_ops == base + 1
        assert result.to_int() == 8
        assert m.fastpath_symbolic_ops == 0

    def test_bit_shortcut_counter(self, m):
        sym = FourVec.fresh_symbol(m, 4, "s")
        mask = FourVec.from_verilog_bits(m, "0011")
        base_bits = m.fastpath_bit_shortcuts
        ops.bitwise_and(sym, mask)
        assert m.fastpath_bit_shortcuts > base_bits

    def test_symbolic_counter(self, m):
        sym = FourVec.fresh_symbol(m, 4, "s")
        one = FourVec.from_int(m, 1, 4)
        base = m.fastpath_symbolic_ops
        ops.add(sym, one)
        assert m.fastpath_symbolic_ops == base + 1

    def test_disabled_counts_nothing(self, m):
        m.fastpath = False
        x = FourVec.from_int(m, 5, 8)
        y = FourVec.from_int(m, 3, 8)
        result = ops.add(x, y)
        assert result.to_int() == 8
        assert m.fastpath_word_ops == 0
        assert m.fastpath_bit_shortcuts == 0
        assert m.fastpath_symbolic_ops == 0


class TestSummaryMaintenance:
    """The incrementally-carried concrete summary must always agree
    with a from-scratch recomputation over the rails."""

    def _check(self, vec):
        fresh = FourVec(vec.mgr, vec.bits, vec.signed)
        assert vec.concrete_summary() == fresh.concrete_summary()

    def test_structural_chain(self, m):
        rng = random.Random(2024)
        for mode in MODES:
            v = rand_vec(m, rng, 8, mode)
            self._check(v)
            self._check(v.resize(12))
            self._check(v.as_signed(True).resize(12))   # sign extension
            self._check(v.resize(3))
            self._check(v.slice(2, 6))
            self._check(v.slice(6, 6))                  # out-of-range -> X
            self._check(v.slice(-1, 4))                 # negative low -> X
            self._check(v.concat(rand_vec(m, rng, 4, mode)))
            self._check(v.replicate(3))
            self._check(v.as_signed(True))

    def test_known_int(self, m):
        v = FourVec.from_int(m, 0xA5, 8)
        assert v.known_int() == 0xA5
        assert FourVec.from_verilog_bits(m, "1x01").known_int() is None
        assert FourVec.fresh_symbol(m, 4, "k").known_int() is None
        # Signed vectors report the raw unsigned payload.
        assert FourVec.from_int(m, 0xF, 4, signed=True).known_int() == 0xF
