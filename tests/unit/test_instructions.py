"""Frame-level unit tests for the micro-instruction set.

A minimal fake kernel records scheduling calls, so the translation
schemes (Fig. 9's priority bookkeeping in particular) can be checked
instruction by instruction without the full runtime.
"""

import pytest

from repro.bdd import FALSE, TRUE, BddManager
from repro.compile.expr import CExpr
from repro.compile.instructions import (
    AccumulationMode, BackEdge, CompiledProcess, End, Exec, Frame, Goto,
    IfSplit, Join, LoopSplit, PrioAdjustGoto, PrioDec,
)
from repro.fourval import FourVec


class FakeOptions:
    def __init__(self, accumulation=AccumulationMode.FULL):
        self.accumulation = accumulation


class FakeKernel:
    def __init__(self, mode=AccumulationMode.FULL):
        self.mgr = BddManager()
        self.options = FakeOptions(mode)
        self.scheduled = []
        self.loop_notes = 0

    def schedule(self, process, pc, delay, control, prio, region=0):
        self.scheduled.append((pc, delay, control, prio))

    def note_loop_iteration(self, frame):
        self.loop_notes += 1


def const_cond(value: bool):
    def ev(kern, env, ctrl, width):
        return FourVec.from_int(kern.mgr, int(value), width)

    return CExpr(width=1, signed=False, eval=ev)


def var_cond(level: int):
    def ev(kern, env, ctrl, width):
        return FourVec(kern.mgr, [(kern.mgr.var(level), FALSE)])

    return CExpr(width=1, signed=False, eval=ev)


@pytest.fixture
def kern():
    k = FakeKernel()
    k.mgr.new_var("s")
    return k


def frame(pc=0, control=TRUE, prio=0):
    return Frame(process=CompiledProcess(name="p", kind="initial"), pc=pc,
                 control=control, prio=prio)


class TestBasics:
    def test_exec_falls_through(self, kern):
        hits = []
        inst = Exec(lambda k, f: hits.append(f.pc))
        f = frame(pc=7)
        assert inst.execute(kern, f) == 8
        assert hits == [7]

    def test_goto(self, kern):
        assert Goto(3).execute(kern, frame()) == 3

    def test_end(self, kern):
        assert End().execute(kern, frame()) is None

    def test_prio_adjust(self, kern):
        f = frame(prio=4)
        inst = PrioAdjustGoto(target=9, delta=-2)
        assert inst.execute(kern, f) == 9
        assert f.prio == 2

    def test_prio_dec(self, kern):
        f = frame(pc=5, prio=3)
        assert PrioDec().execute(kern, f) == 6
        assert f.prio == 2


class TestIfSplit:
    def test_concrete_true_falls_through(self, kern):
        split = IfSplit(const_cond(True), else_target=50)
        f = frame(pc=10, prio=0)
        assert split.execute(kern, f) == 11
        assert f.prio == 2            # Fig. 9: prio += 2
        assert kern.scheduled == []   # no split, no event

    def test_concrete_false_jumps(self, kern):
        split = IfSplit(const_cond(False), else_target=50)
        f = frame(pc=10)
        assert split.execute(kern, f) == 50
        assert kern.scheduled == []

    def test_symbolic_schedules_else(self, kern):
        split = IfSplit(var_cond(0), else_target=50)
        f = frame(pc=10, prio=0)
        assert split.execute(kern, f) == 11
        assert f.control == kern.mgr.var(0)
        (pc, delay, control, prio), = kern.scheduled
        assert pc == 50 and delay == 0
        assert control == kern.mgr.not_(kern.mgr.var(0))
        assert prio == 2

    def test_dead_path_ends(self, kern):
        split = IfSplit(const_cond(True), else_target=50)
        f = frame(control=FALSE)
        assert split.execute(kern, f) is None


class TestJoin:
    def test_concrete_falls_through(self, kern):
        join = Join(target=30)
        f = frame(prio=2, control=TRUE)
        assert join.execute(kern, f) == 30
        assert f.prio == 1
        assert kern.scheduled == []

    def test_symbolic_schedules_accumulation_event(self, kern):
        join = Join(target=30)
        f = frame(prio=2, control=kern.mgr.var(0))
        assert join.execute(kern, f) is None
        (pc, delay, control, prio), = kern.scheduled
        assert (pc, delay, prio) == (30, 0, 1)

    def test_reduced_modes_never_schedule(self):
        for mode in (AccumulationMode.QUEUE_MERGE_ONLY, AccumulationMode.NONE):
            kern = FakeKernel(mode)
            kern.mgr.new_var("s")
            join = Join(target=30)
            f = frame(prio=2, control=kern.mgr.var(0))
            assert join.execute(kern, f) == 30
            assert kern.scheduled == []


class TestLoopSplit:
    def test_live_path_enters_body(self, kern):
        split = LoopSplit(var_cond(0), exit_target=40)
        f = frame(pc=10, prio=2)
        assert split.execute(kern, f) == 11
        assert f.control == kern.mgr.var(0)
        (pc, _, control, prio), = kern.scheduled
        assert pc == 40 and prio == 2
        assert control == kern.mgr.not_(kern.mgr.var(0))

    def test_concrete_false_exits_directly(self, kern):
        split = LoopSplit(const_cond(False), exit_target=40)
        f = frame(pc=10)
        assert split.execute(kern, f) == 40
        assert kern.scheduled == []

    def test_dead_frame(self, kern):
        split = LoopSplit(const_cond(True), exit_target=40)
        assert split.execute(kern, frame(control=FALSE)) is None


class TestBackEdge:
    def test_concrete_jumps(self, kern):
        edge = BackEdge(5)
        assert edge.execute(kern, frame(control=TRUE)) == 5
        assert kern.loop_notes == 1
        assert kern.scheduled == []

    def test_symbolic_schedules_head_event(self, kern):
        edge = BackEdge(5)
        f = frame(control=kern.mgr.var(0), prio=2)
        assert edge.execute(kern, f) is None
        (pc, _, _, prio), = kern.scheduled
        assert pc == 5 and prio == 2

    def test_none_mode_jumps_directly(self):
        kern = FakeKernel(AccumulationMode.NONE)
        kern.mgr.new_var("s")
        edge = BackEdge(5)
        assert edge.execute(kern, frame(control=kern.mgr.var(0))) == 5
