"""Property-based tests: FourVec operators vs. an independent reference.

The reference interpreter below implements IEEE-1364 four-valued
semantics directly on character strings ('0'/'1'/'x'/'z'), with no BDD
involvement.  Hypothesis drives random constant vectors (including X/Z
digits) through both implementations and demands bit-exact agreement —
and separately drives *symbolic* vectors, then checks every cofactor
against the constant path.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager
from repro.fourval import FourVec, ops

WIDTH = 5

digits = st.sampled_from("01xz")
vectors = st.text(alphabet="01xz", min_size=WIDTH, max_size=WIDTH)
known_vectors = st.text(alphabet="01", min_size=WIDTH, max_size=WIDTH)


# ----------------------------------------------------------------------
# reference implementation (string-based, bit-exact 1364 semantics)
# ----------------------------------------------------------------------

def _norm(c):
    return c if c in "01" else None  # None = unknown (x or z read as x)


def ref_not(x):
    return "".join("x" if _norm(c) is None else ("0" if c == "1" else "1")
                   for c in x)


def _bit_and(a, b):
    if a == "0" or b == "0":
        return "0"
    if a == "1" and b == "1":
        return "1"
    return "x"


def _bit_or(a, b):
    if a == "1" or b == "1":
        return "1"
    if a == "0" and b == "0":
        return "0"
    return "x"


def _bit_xor(a, b):
    if _norm(a) is None or _norm(b) is None:
        return "x"
    return "1" if a != b else "0"


def ref_bitwise(x, y, op):
    return "".join(op(a, b) for a, b in zip(x, y))


def ref_arith(x, y, fn, width=WIDTH):
    if any(c in "xz" for c in x + y):
        return "x" * width
    result = fn(int(x, 2), int(y, 2)) % (1 << width)
    return format(result, f"0{width}b")


def ref_eq(x, y):
    definite_diff = any(
        a in "01" and b in "01" and a != b for a, b in zip(x, y)
    )
    if definite_diff:
        return "0"
    if any(c in "xz" for c in x + y):
        return "x"
    return "1" if x == y else "0"


def ref_lt(x, y):
    if any(c in "xz" for c in x + y):
        return "x"
    return "1" if int(x, 2) < int(y, 2) else "0"


def ref_reduce_and(x):
    if "0" in x:
        return "0"
    if all(c == "1" for c in x):
        return "1"
    return "x"


def ref_reduce_or(x):
    if "1" in x:
        return "1"
    if all(c == "0" for c in x):
        return "0"
    return "x"


def ref_reduce_xor(x):
    if any(c in "xz" for c in x):
        return "x"
    return "1" if x.count("1") % 2 else "0"


def ref_shift_left(x, amount_text, width=WIDTH):
    if any(c in "xz" for c in amount_text):
        return "x" * width
    if any(c in "xz" for c in x):
        # value x/z bits shift positionally; our implementation poisons
        # via arith rule only for the amount, bits shift as-is
        pass
    amount = int(amount_text, 2)
    shifted = (x + "0" * amount)[-width:] if amount < width else "0" * width
    return shifted


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def make(m, text):
    return FourVec.from_verilog_bits(m, text)


def check_binary(x_text, y_text, impl, ref):
    m = BddManager()
    got = impl(make(m, x_text), make(m, y_text)).to_verilog_bits()
    assert got == ref(x_text, y_text)


# ----------------------------------------------------------------------
# constant-vector agreement
# ----------------------------------------------------------------------

@settings(max_examples=300, deadline=None)
@given(vectors)
def test_not_matches_reference(x):
    m = BddManager()
    assert ops.bitwise_not(make(m, x)).to_verilog_bits() == ref_not(x)


@settings(max_examples=300, deadline=None)
@given(vectors, vectors)
def test_and_matches_reference(x, y):
    check_binary(x, y, ops.bitwise_and,
                 lambda a, b: ref_bitwise(a, b, _bit_and))


@settings(max_examples=300, deadline=None)
@given(vectors, vectors)
def test_or_matches_reference(x, y):
    check_binary(x, y, ops.bitwise_or,
                 lambda a, b: ref_bitwise(a, b, _bit_or))


@settings(max_examples=300, deadline=None)
@given(vectors, vectors)
def test_xor_matches_reference(x, y):
    check_binary(x, y, ops.bitwise_xor,
                 lambda a, b: ref_bitwise(a, b, _bit_xor))


@settings(max_examples=300, deadline=None)
@given(vectors, vectors)
def test_add_matches_reference(x, y):
    check_binary(x, y, ops.add, lambda a, b: ref_arith(a, b, int.__add__))


@settings(max_examples=300, deadline=None)
@given(vectors, vectors)
def test_sub_matches_reference(x, y):
    check_binary(x, y, ops.subtract,
                 lambda a, b: ref_arith(a, b, int.__sub__))


@settings(max_examples=200, deadline=None)
@given(vectors, vectors)
def test_mul_matches_reference(x, y):
    check_binary(x, y, ops.multiply,
                 lambda a, b: ref_arith(a, b, int.__mul__))


@settings(max_examples=200, deadline=None)
@given(known_vectors, known_vectors)
def test_divmod_matches_reference(x, y):
    m = BddManager()
    a, b = make(m, x), make(m, y)
    if int(y, 2) == 0:
        assert ops.divide(a, b).to_verilog_bits() == "x" * WIDTH
        assert ops.modulo(a, b).to_verilog_bits() == "x" * WIDTH
    else:
        assert ops.divide(a, b).to_int() == int(x, 2) // int(y, 2)
        assert ops.modulo(a, b).to_int() == int(x, 2) % int(y, 2)


@settings(max_examples=300, deadline=None)
@given(vectors, vectors)
def test_eq_matches_reference(x, y):
    m = BddManager()
    got = ops.equal(make(m, x), make(m, y)).to_verilog_bits()
    assert got == ref_eq(x, y)


@settings(max_examples=300, deadline=None)
@given(vectors, vectors)
def test_lt_matches_reference(x, y):
    m = BddManager()
    got = ops.less_than(make(m, x), make(m, y)).to_verilog_bits()
    assert got == ref_lt(x, y)


@settings(max_examples=300, deadline=None)
@given(vectors)
def test_reductions_match_reference(x):
    m = BddManager()
    v = make(m, x)
    assert ops.reduce_and(v).to_verilog_bits() == ref_reduce_and(x)
    assert ops.reduce_or(v).to_verilog_bits() == ref_reduce_or(x)
    assert ops.reduce_xor(v).to_verilog_bits() == ref_reduce_xor(x)


@settings(max_examples=300, deadline=None)
@given(vectors, vectors)
def test_case_equality_total(x, y):
    m = BddManager()
    got = ops.case_equal(make(m, x), make(m, y)).to_verilog_bits()
    assert got == ("1" if x == y else "0")


# ----------------------------------------------------------------------
# symbolic agreement: every cofactor equals the constant computation
# ----------------------------------------------------------------------

_BINARY_OPS = [
    (ops.bitwise_and, lambda a, b: ref_bitwise(a, b, _bit_and)),
    (ops.bitwise_or, lambda a, b: ref_bitwise(a, b, _bit_or)),
    (ops.add, lambda a, b: ref_arith(a, b, int.__add__)),
    (ops.subtract, lambda a, b: ref_arith(a, b, int.__sub__)),
]


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=len(_BINARY_OPS) - 1), vectors)
def test_symbolic_cofactors_match_constants(op_index, y_text):
    impl, ref = _BINARY_OPS[op_index]
    m = BddManager()
    sym = FourVec.fresh_symbol(m, WIDTH, "s")
    result = impl(sym, make(m, y_text))
    for bits in itertools.product([False, True], repeat=WIDTH):
        cube = dict(enumerate(bits))
        x_text = "".join("1" if b else "0" for b in reversed(bits))
        got = result.substitute(cube).to_verilog_bits()
        assert got == ref(x_text, y_text)


@settings(max_examples=40, deadline=None)
@given(vectors, vectors)
def test_guarded_merge_cofactors(x_text, y_text):
    """ite(c, x, y) restricted to c=1 gives x, to c=0 gives y."""
    m = BddManager()
    control = m.new_var("c")
    x, y = make(m, x_text), make(m, y_text)
    merged = x.ite(control, y)
    assert merged.substitute({0: True}).to_verilog_bits() == x_text
    assert merged.substitute({0: False}).to_verilog_bits() == y_text
