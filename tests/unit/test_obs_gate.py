"""The perf-regression gate: direction inference, trajectory
flattening, tolerance handling, and the pass/fail verdict the
``bench-gate`` CI lane relies on."""

from __future__ import annotations

import json

import pytest

from repro.obs.gate import (
    GateError, compare_cells, compare_trajectories, direction,
    latest_cells, load_trajectory, parse_tolerance,
)


class TestDirection:
    def test_higher_is_better_cells(self):
        for key in ("smoke_speedup", "fastpath/smoke_concrete_ratio",
                    "events_per_second", "throughput", "apply_hits"):
            assert direction(key) == 1, key

    def test_lower_is_better_cells(self):
        for key in ("wall_seconds.4", "overhead_pct", "peak_nodes",
                    "rss_mb", "apply_misses", "latency_ms"):
            assert direction(key) == -1, key

    def test_rates_beat_the_seconds_substring(self):
        # "events_per_second" contains "second" — the rate reading wins
        assert direction("batch/events_per_second") == 1

    def test_unknown_direction(self):
        assert direction("mystery_number") == 0


class TestTrajectories:
    def _write(self, tmp_path, name, entries):
        path = tmp_path / name
        path.write_text(json.dumps(entries))
        return str(path)

    def test_load_rejects_missing_bad_and_empty(self, tmp_path):
        with pytest.raises(GateError):
            load_trajectory(str(tmp_path / "nope.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(GateError):
            load_trajectory(str(bad))
        with pytest.raises(GateError):
            load_trajectory(self._write(tmp_path, "empty.json", []))
        with pytest.raises(GateError):
            load_trajectory(self._write(tmp_path, "obj.json",
                                        [{"a": 1}, "junk"]))

    def test_latest_entry_per_bench_wins(self):
        cells = latest_cells([
            {"bench": "fastpath", "smoke_speedup": 1.0},
            {"bench": "fastpath", "smoke_speedup": 2.5},
            {"bench": "batch", "wall_seconds": {"4": 8.0}},
        ])
        assert cells["fastpath/smoke_speedup"] == 2.5
        assert cells["batch/wall_seconds.4"] == 8.0

    def test_bookkeeping_and_nonnumeric_skipped(self):
        cells = latest_cells([{
            "bench": "b", "recorded": "2026-01-01", "gate": True,
            "floors": {"x": 1}, "effective_cores": 8,
            "notes": ["a"], "speedup": 2.0,
        }])
        assert cells == {"b/speedup": 2.0}


class TestCompare:
    def test_identical_cells_pass(self):
        cells = {"b/speedup": 2.0, "b/wall_seconds": 5.0}
        report = compare_cells(cells, dict(cells), max_regress=0.10)
        assert report.passed
        assert len(report.cells) == 2
        assert "PASS" in report.describe()

    def test_twenty_percent_slowdown_fails_ten_percent_gate(self):
        old = {"b/wall_seconds": 5.0, "b/speedup": 2.0}
        new = {"b/wall_seconds": 6.0, "b/speedup": 2.0 / 1.2}
        report = compare_cells(old, new, max_regress=0.10)
        assert not report.passed
        assert {c.cell for c in report.regressions} == \
            {"b/wall_seconds", "b/speedup"}
        assert "FAIL" in report.describe()

    def test_improvement_always_passes(self):
        old = {"b/wall_seconds": 5.0, "b/speedup": 2.0}
        new = {"b/wall_seconds": 2.0, "b/speedup": 9.0}
        assert compare_cells(old, new, max_regress=0.0).passed

    def test_within_tolerance_passes(self):
        report = compare_cells({"b/wall_seconds": 100.0},
                               {"b/wall_seconds": 109.0},
                               max_regress=0.10)
        assert report.passed

    def test_one_sided_unknown_and_zero_baseline_skipped(self):
        report = compare_cells(
            {"b/only_old_seconds": 1.0, "b/mystery": 3.0,
             "b/zero_nodes": 0.0},
            {"b/only_new_seconds": 1.0, "b/mystery": 9.0,
             "b/zero_nodes": 50.0})
        assert report.passed
        assert not report.cells
        assert len(report.skipped) == 4

    def test_compare_trajectories_end_to_end(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps([
            {"bench": "b", "wall_seconds": {"1": 10.0}, "speedup": 3.0}]))
        new.write_text(json.dumps([
            {"bench": "b", "wall_seconds": {"1": 12.5}, "speedup": 3.0}]))
        report = compare_trajectories(str(old), str(new), max_regress=0.10)
        assert not report.passed
        assert report.regressions[0].cell == "b/wall_seconds.1"

    def test_committed_baselines_self_compare_clean(self):
        """The CI lane's sanity half: baselines gate themselves."""
        import os

        root = os.path.join(os.path.dirname(__file__), os.pardir,
                            os.pardir)
        for name in ("BENCH_fastpath.json", "BENCH_batch.json"):
            path = os.path.join(root, name)
            if not os.path.exists(path):
                pytest.skip(f"{name} not committed")
            report = compare_trajectories(path, path, max_regress=0.10)
            assert report.passed, report.describe()
            assert report.cells, f"{name} produced no comparable cells"


class TestParseTolerance:
    def test_percent_and_fraction(self):
        assert parse_tolerance("10%") == pytest.approx(0.10)
        assert parse_tolerance(" 2.5% ") == pytest.approx(0.025)
        assert parse_tolerance("0.1") == pytest.approx(0.1)
        assert parse_tolerance("0") == 0.0

    def test_garbage_and_out_of_range_rejected(self):
        for text in ("ten", "%", "-5%", "1000%", "10.0.0"):
            with pytest.raises(GateError):
                parse_tolerance(text)
