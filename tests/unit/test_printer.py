"""Pretty-printer round trip: parse(print(parse(s))) ≡ parse(s).

Structural AST equality after a round trip proves the printer emits
valid, meaning-preserving source.  Runs over hand-picked programs,
every bundled benchmark design, and — behaviorally — over simulation
results (printing, re-parsing and re-simulating must give identical
final values).
"""

import dataclasses

import pytest

from repro.designs import load
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_source
from repro.frontend.printer import print_module, print_modules


def ast_equal(a, b) -> bool:
    """Structural equality ignoring source line numbers."""
    if type(a) is not type(b):
        return False
    if dataclasses.is_dataclass(a):
        for field in dataclasses.fields(a):
            # line numbers and literal radix are presentation, not
            # semantics (the printer normalizes radix to binary)
            if field.name in ("line", "base"):
                continue
            if not ast_equal(getattr(a, field.name), getattr(b, field.name)):
                return False
        return True
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            ast_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict):
        return set(a) == set(b) and all(ast_equal(a[k], b[k]) for k in a)
    return a == b


def roundtrip(source, defines=None):
    first = parse_source(source, defines=defines)
    printed = print_modules(first)
    second = parse_source(printed)
    assert set(first) == set(second), printed
    for name in first:
        assert ast_equal(first[name], second[name]), (
            f"module {name} changed across round trip:\n{printed}"
        )
    return printed


SAMPLES = [
    # declarations of every kind
    """
    module m;
      parameter W = 4;
      localparam D = W * 2;
      reg [W-1:0] r;
      reg signed [7:0] s;
      wire [3:0] w;
      tri t;
      wand wa; wor wo; tri0 t0; tri1 t1;
      integer i;
      time tm;
      event ev;
      reg [7:0] mem [0:15];
      reg init_me = 1;
    endmodule
    """,
    # all statement forms
    """
    module m; reg a, clk; reg [3:0] x; integer k; event ev;
      initial begin : named
        x = 1;
        x <= 2;
        x = #3 4;
        x <= #1 5;
        x = @(posedge clk) 6;
        if (a) x = 1; else if (!a) x = 2; else x = 3;
        case (x) 0: x = 1; 1, 2: x = 2; default: ; endcase
        casez (x) 4'b1??? : x = 0; endcase
        for (k = 0; k < 4; k = k + 1) x = x + 1;
        while (x != 0) x = x - 1;
        repeat (3) #1 x = x + 1;
        wait (a) x = 9;
        disable named;
        -> ev;
        $display("hi %d", x);
      end
      initial fork : f
        #1 a = 0;
        #2 a = 1;
      join
      initial forever #5 clk = ~clk;
      always @(a or posedge clk) x = {x[2:0], a};
      always @* x = x;
    endmodule
    """,
    # expressions
    """
    module m; reg [7:0] a, b, y; reg c;
      wire [7:0] w = (a + b) * (a - b) / (b % 3) ** 2;
      initial begin
        y = ~a & b | a ^ b ~^ a;
        y = {a[3:0], b[7:4], {2{c}}};
        y = (a < b) ? a : (a >= b) ? b : 8'hff;
        y = a << 2 >> b[1:0] >>> 1;
        c = &a | ^b & ~|y;
        c = a == b && a !== b || a != 8'b1010_xzxz;
        y = $signed(a) + $unsigned(b);
        y = b[c];
      end
    endmodule
    """,
    # hierarchy + functions + tasks + gates
    """
    module child(input [3:0] i, output [3:0] o);
      assign o = i + 1;
    endmodule
    module top;
      reg [3:0] x; wire [3:0] y, z;
      child #(.P(1)) u1 (.i(x), .o(y));
      child u2 (x, z);
      and g1(w1, x[0], x[1]);
      not (w2, x[2]);
      wire w1, w2;
      function [3:0] inc;
        input [3:0] v;
        inc = v + 1;
      endfunction
      task pulse;
        input [3:0] n;
        begin #n x = inc(x); end
      endtask
      initial pulse(2);
      initial $display("%d", top.u1.o);
    endmodule
    """,
]


@pytest.mark.parametrize("index", range(len(SAMPLES)))
def test_roundtrip_samples(index):
    roundtrip(SAMPLES[index])


@pytest.mark.parametrize("design,kwargs", [
    ("gcd", {}),
    ("dram", {}),
    ("risc8", {"runtime": 100}),
    ("mcu8", {"runtime": 100}),
    ("arbiter", {"runtime": 80}),
])
def test_roundtrip_bundled_designs(design, kwargs):
    source, _, defines = load(design, **kwargs)
    roundtrip(source, defines=defines)


def test_printed_design_simulates_identically():
    import repro

    source, top, defines = load("gcd", rounds=1)
    original = repro.open_sim(source, top=top,
                                                   defines=defines)
    result_a = original.run(until=2000)

    printed = print_modules(parse_source(source, defines=defines))
    reprinted = repro.open_sim(printed, top=top)
    result_b = reprinted.run(until=2000)

    assert result_a.time == result_b.time
    assert len(result_a.violations) == len(result_b.violations)
    assert result_a.stats.events_processed == result_b.stats.events_processed


def test_print_single_module():
    module = parse_source("module solo; reg r; endmodule")["solo"]
    text = print_module(module)
    assert text.startswith("module solo;")
    assert text.endswith("endmodule")
