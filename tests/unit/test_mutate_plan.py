"""Mutation plans: deterministic enumeration and seeded capping.

A plan is the reproducibility contract of a campaign — these tests pin
the byte-identity of ``to_json()``, the site addressing scheme, the
default target-module policy (everything but the top), and the seeded
``max_mutants`` subset.
"""

from __future__ import annotations

import pytest

from repro.errors import MutationError
from repro.mutate import build_plan
from repro.mutate.plan import PLAN_SCHEMA

DESIGN = """
module dut(a, b, s, t);
  input [3:0] a, b;
  output [4:0] s;
  output t;
  assign s = {1'b0, a} + {1'b0, b};
  assign t = (a == b);
endmodule

module tb;
  reg [3:0] a, b;
  wire [4:0] s;
  wire t;
  dut u(.a(a), .b(b), .s(s), .t(t));
  initial begin
    a = $random;
    b = $random;
    #1 $assert(s == ({1'b0, a} + {1'b0, b}));
    #1 $finish;
  end
endmodule
"""


def test_plan_is_byte_identical_for_same_inputs():
    first = build_plan(DESIGN, seed=3)
    second = build_plan(DESIGN, seed=3)
    assert first.to_json() == second.to_json()
    assert first.to_dict()["schema"] == PLAN_SCHEMA
    assert first.baseline_source == second.baseline_source


def test_default_targets_exclude_the_top():
    plan = build_plan(DESIGN)
    assert plan.top == "tb"
    assert plan.target_modules == ["dut"]
    assert all(m.module == "dut" for m in plan.mutants)


def test_single_module_design_falls_back_to_top():
    plan = build_plan("""
module only;
  reg [3:0] x;
  initial x = x + 4'd1;
endmodule
""")
    assert plan.target_modules == ["only"]
    assert plan.mutants


def test_sites_enumerate_module_operator_ordinal():
    plan = build_plan(DESIGN, operators=["opswap", "cmpswap"])
    ids = [m.id for m in plan.mutants]
    # one + site, one == site, indexed in canonical operator order
    assert ids == ["m0000_opswap_dut_o0", "m0001_cmpswap_dut_o0"]
    assert plan.total_sites == 2
    assert all("->" in m.description for m in plan.mutants)
    assert plan["m0000_opswap_dut_o0"].operator == "opswap"
    with pytest.raises(KeyError):
        plan["m9999_nope_dut_o0"]


def test_mutant_source_differs_from_baseline_at_one_site():
    plan = build_plan(DESIGN, operators=["opswap"])
    source = plan.mutant_source(plan.mutants[0])
    assert source != plan.baseline_source
    diff = [pair for pair in zip(plan.baseline_source.splitlines(),
                                 source.splitlines())
            if pair[0] != pair[1]]
    assert len(diff) == 1
    assert "-" in diff[0][1]  # the + became a -
    # rendering is repeatable and does not corrupt the plan's AST
    assert plan.mutant_source(plan.mutants[0]) == source
    assert build_plan(DESIGN, operators=["opswap"]).to_json() \
        == plan.to_json()


def test_seeded_cap_is_deterministic_and_order_restored():
    full = build_plan(DESIGN)
    assert len(full.mutants) > 4
    capped = build_plan(DESIGN, seed=11, max_mutants=4)
    again = build_plan(DESIGN, seed=11, max_mutants=4)
    assert capped.to_json() == again.to_json()
    assert len(capped.mutants) == 4
    assert capped.total_sites == full.total_sites
    # the subset preserves enumeration order: site keys appear in the
    # same relative order as in the uncapped plan
    full_keys = [(m.operator, m.module, m.ordinal) for m in full.mutants]
    capped_keys = [(m.operator, m.module, m.ordinal)
                   for m in capped.mutants]
    positions = [full_keys.index(k) for k in capped_keys]
    assert positions == sorted(positions)


def test_different_seeds_pick_different_subsets():
    subsets = {
        tuple((m.operator, m.ordinal)
              for m in build_plan(DESIGN, seed=seed, max_mutants=3).mutants)
        for seed in range(8)
    }
    assert len(subsets) > 1


def test_cap_larger_than_sites_is_a_noop():
    full = build_plan(DESIGN)
    capped = build_plan(DESIGN, max_mutants=10_000)
    assert [m.id for m in capped.mutants] == [m.id for m in full.mutants]


def test_plan_rejects_bad_inputs():
    with pytest.raises(MutationError, match="unknown mutation operator"):
        build_plan(DESIGN, operators=["zap"])
    with pytest.raises(MutationError, match="unknown target module"):
        build_plan(DESIGN, modules=["nope"])
    with pytest.raises(MutationError, match="empty target module list"):
        build_plan(DESIGN, modules=[])
    with pytest.raises(MutationError, match="max_mutants"):
        build_plan(DESIGN, max_mutants=-1)


def test_design_sha_tracks_defines():
    plain = build_plan(DESIGN)
    defined = build_plan(DESIGN, defines={"X": "1"})
    assert plain.design_sha != defined.design_sha
    assert plain.baseline_sha == defined.baseline_sha  # no `ifdef used
