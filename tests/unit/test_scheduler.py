"""Unit tests for the stratified priority event queue."""

import pytest

from repro.bdd import BddManager, FALSE, TRUE
from repro.compile.instructions import AccumulationMode, CompiledProcess
from repro.sim.scheduler import (
    Event, REGION_ACTIVE, REGION_INACTIVE, REGION_MONITOR, REGION_NBA,
    Scheduler,
)


@pytest.fixture
def mgr():
    return BddManager()


def proc(index=0):
    p = CompiledProcess(name=f"p{index}", kind="initial")
    p.index = index
    return p


def ev(time=0, region=REGION_ACTIVE, prio=0, kind="proc", process=None,
       pc=0, control=TRUE, index=-1):
    return Event(time=time, region=region, prio=prio, kind=kind,
                 process=process or proc(), pc=pc, control=control,
                 index=index)


class TestOrdering:
    def test_time_order(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        p = proc()
        s.push(ev(time=5, process=p, pc=1))
        s.push(ev(time=2, process=p, pc=2))
        s.push(ev(time=9, process=p, pc=3))
        assert [s.pop().time for _ in range(3)] == [2, 5, 9]

    def test_region_order_within_time(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        p = proc()
        s.push(ev(region=REGION_MONITOR, process=p, pc=1))
        s.push(ev(region=REGION_ACTIVE, process=p, pc=2))
        s.push(ev(region=REGION_NBA, process=p, pc=3))
        s.push(ev(region=REGION_INACTIVE, process=p, pc=4))
        regions = [s.pop().region for _ in range(4)]
        assert regions == [REGION_ACTIVE, REGION_INACTIVE, REGION_NBA,
                           REGION_MONITOR]

    def test_priority_order_within_region(self, mgr):
        """Higher priority first — the paper's depth-first discipline."""
        s = Scheduler(mgr, AccumulationMode.FULL)
        p = proc()
        s.push(ev(prio=1, process=p, pc=1))
        s.push(ev(prio=5, process=p, pc=2))
        s.push(ev(prio=3, process=p, pc=3))
        assert [s.pop().prio for _ in range(3)] == [5, 3, 1]

    def test_fifo_within_priority(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        p = proc()
        s.push(ev(process=p, pc=10))
        s.push(ev(process=p, pc=20))
        s.push(ev(process=p, pc=30))
        assert [s.pop().pc for _ in range(3)] == [10, 20, 30]

    def test_peek(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        assert s.peek_time() is None
        s.push(ev(time=7))
        assert s.peek_time() == 7
        assert s.peek_region() == REGION_ACTIVE
        assert len(s) == 1


class TestAccumulation:
    def test_same_label_merges_controls(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        s = Scheduler(mgr, AccumulationMode.FULL)
        p = proc()
        assert not s.push(ev(process=p, pc=4, control=a))
        assert s.push(ev(process=p, pc=4, control=b))
        assert len(s) == 1
        merged = s.pop()
        assert merged.control == mgr.or_(a, b)
        assert s.merged == 1

    def test_different_pc_no_merge(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        p = proc()
        s.push(ev(process=p, pc=4))
        s.push(ev(process=p, pc=5))
        assert len(s) == 2

    def test_different_time_no_merge(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        p = proc()
        s.push(ev(time=1, process=p, pc=4))
        s.push(ev(time=2, process=p, pc=4))
        assert len(s) == 2

    def test_different_prio_no_merge(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        p = proc()
        s.push(ev(prio=1, process=p, pc=4))
        s.push(ev(prio=2, process=p, pc=4))
        assert len(s) == 2

    def test_different_process_no_merge(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        s.push(ev(process=proc(0), pc=4))
        s.push(ev(process=proc(1), pc=4))
        assert len(s) == 2

    def test_popped_event_not_merged_into(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        s = Scheduler(mgr, AccumulationMode.FULL)
        p = proc()
        s.push(ev(process=p, pc=4, control=a))
        popped = s.pop()
        s.push(ev(process=p, pc=4, control=b))
        assert popped.control == a
        assert s.pop().control == b

    def test_none_mode_never_merges(self, mgr):
        s = Scheduler(mgr, AccumulationMode.NONE)
        p = proc()
        s.push(ev(process=p, pc=4))
        s.push(ev(process=p, pc=4))
        assert len(s) == 2
        assert s.merged == 0

    def test_assign_events_dedupe(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        s.push(ev(kind="assign", index=3))
        assert s.push(ev(kind="assign", index=3))
        s.push(ev(kind="assign", index=4))
        assert len(s) == 2

    def test_nba_events_never_merge(self, mgr):
        s = Scheduler(mgr, AccumulationMode.FULL)
        s.push(ev(kind="nba", region=REGION_NBA))
        s.push(ev(kind="nba", region=REGION_NBA))
        assert len(s) == 2

    def test_queue_merge_only_merges(self, mgr):
        s = Scheduler(mgr, AccumulationMode.QUEUE_MERGE_ONLY)
        p = proc()
        s.push(ev(process=p, pc=4))
        assert s.push(ev(process=p, pc=4))
        assert len(s) == 1
