"""Property-based BDD suite: random expressions vs a truth-table oracle.

Every operator the simulator relies on — ite/and/or/xor/restrict/
compose/exists/forall/sat_count — is checked on randomized expression
trees over ``N_VARS`` variables against a brute-force truth-table
oracle (functions as ``2**N_VARS``-bit masks), *before and after*
forced garbage collections and random in-place reorders.  Three
invariants are pinned per case:

* truth: the BDD's table equals the oracle mask;
* handle stability: a :class:`BddRef` taken before GC/reorder still
  denotes the same function afterwards;
* canonicity: recomputing the operation from the remapped operand
  handles yields the *identical node id* as the remapped result.

Deterministic stdlib ``random`` seeds — no hypothesis shrinking, every
failure reproduces.  ``REPRO_FUZZ_SCALE`` multiplies the case count
(the scheduled fuzz lane runs at 10x).
"""

import os
import random

import pytest

from repro.bdd import FALSE, TRUE, BddManager

N_VARS = 5
N_ASSIGN = 1 << N_VARS
FULL = (1 << N_ASSIGN) - 1
SCALE = float(os.environ.get("REPRO_FUZZ_SCALE", "1"))
CASES = max(1, int(200 * SCALE))

#: mask of assignments (indexed by ``a``) on which named var ``xi`` is 1
VAR_MASKS = [
    sum(1 << a for a in range(N_ASSIGN) if a >> i & 1)
    for i in range(N_VARS)
]


def fresh():
    mgr = BddManager()
    for i in range(N_VARS):
        mgr.new_var(f"x{i}")
    return mgr


def level_of(mgr, i):
    """Current level of the variable *named* ``xi`` (moves on reorder)."""
    for level in range(mgr.var_count):
        if mgr.var_name(level) == f"x{i}":
            return level
    raise AssertionError(f"x{i} vanished")


def table_of(mgr, node):
    """Truth table of ``node`` as an oracle mask, keyed by var *name*."""
    levels = [level_of(mgr, i) for i in range(N_VARS)]
    mask = 0
    for a in range(N_ASSIGN):
        cube = {levels[i]: bool(a >> i & 1) for i in range(N_VARS)}
        if mgr.eval(node, cube):
            mask |= 1 << a
    return mask


def random_expr(mgr, rng, depth=3):
    """A random expression tree; returns ``(node, oracle_mask)``."""
    if depth == 0 or rng.random() < 0.3:
        choice = rng.randrange(N_VARS + 2)
        if choice == N_VARS:
            return FALSE, 0
        if choice == N_VARS + 1:
            return TRUE, FULL
        return mgr.var(level_of(mgr, choice)), VAR_MASKS[choice]
    op = rng.choice(("and", "or", "xor", "not", "ite"))
    f, fm = random_expr(mgr, rng, depth - 1)
    if op == "not":
        return mgr.not_(f), ~fm & FULL
    g, gm = random_expr(mgr, rng, depth - 1)
    if op == "and":
        return mgr.and_(f, g), fm & gm
    if op == "or":
        return mgr.or_(f, g), fm | gm
    if op == "xor":
        return mgr.xor(f, g), fm ^ gm
    h, hm = random_expr(mgr, rng, depth - 1)
    return mgr.ite(f, g, h), (fm & gm) | (~fm & hm & FULL)


def churn(mgr, rng, case):
    """Force a collection and, periodically, a random reorder."""
    mgr.collect()
    if case % 5 == 0:
        order = list(range(mgr.var_count))
        rng.shuffle(order)
        mgr.reorder(order)


def mask_restrict(fm, i, value):
    out = 0
    for a in range(N_ASSIGN):
        src = (a | 1 << i) if value else (a & ~(1 << i))
        if fm >> src & 1:
            out |= 1 << a
    return out


def mask_compose(fm, i, gm):
    out = 0
    for a in range(N_ASSIGN):
        bit = gm >> a & 1
        src = (a | 1 << i) if bit else (a & ~(1 << i))
        if fm >> src & 1:
            out |= 1 << a
    return out


def run_cases(op_arity, apply_mgr, apply_mask, seed):
    """Shared harness: build operands, apply, verify, churn, re-verify.

    ``apply_mgr(mgr, sub_rng, *nodes)`` and ``apply_mask(sub_rng,
    *masks)`` each receive a *fresh* generator seeded identically per
    case, so ops that draw random parameters (restrict level, compose
    target, quantified sets) see the same draws on both sides — and
    again on the post-churn canonicity recompute.
    """
    rng = random.Random(seed)
    mgr = fresh()
    for case in range(CASES):
        operands = [random_expr(mgr, rng) for _ in range(op_arity)]
        nodes = [node for node, _ in operands]
        masks = [mask for _, mask in operands]
        sub = rng.randrange(1 << 30)
        result = apply_mgr(mgr, random.Random(sub), *nodes)
        expected = apply_mask(random.Random(sub), *masks)
        assert table_of(mgr, result) == expected, f"case {case} (pre-GC)"
        refs = [mgr.ref(n) for n in nodes]
        result_ref = mgr.ref(result)
        churn(mgr, rng, case)
        # handle stability: same function after GC/reorder
        assert table_of(mgr, result_ref.deref()) == expected, \
            f"case {case} (post-churn)"
        # canonicity: recomputing the op from the remapped operand
        # handles (same parameter draws) gives the identical node id
        again = apply_mgr(mgr, random.Random(sub),
                          *[r.deref() for r in refs])
        assert again == result_ref.deref(), f"case {case} (canonicity)"


class TestOperatorProperties:
    def test_ite(self):
        run_cases(
            3,
            lambda mgr, rng, f, g, h: mgr.ite(f, g, h),
            lambda rng, fm, gm, hm: (fm & gm) | (~fm & hm & FULL),
            seed=101,
        )

    def test_and(self):
        run_cases(
            2,
            lambda mgr, rng, f, g: mgr.and_(f, g),
            lambda rng, fm, gm: fm & gm,
            seed=102,
        )

    def test_or(self):
        run_cases(
            2,
            lambda mgr, rng, f, g: mgr.or_(f, g),
            lambda rng, fm, gm: fm | gm,
            seed=103,
        )

    def test_xor(self):
        run_cases(
            2,
            lambda mgr, rng, f, g: mgr.xor(f, g),
            lambda rng, fm, gm: fm ^ gm,
            seed=104,
        )

    def test_restrict(self):
        run_cases(
            1,
            lambda mgr, rng, f: mgr.restrict(
                f, level_of(mgr, rng.randrange(N_VARS)),
                rng.random() < 0.5),
            lambda rng, fm: mask_restrict(
                fm, rng.randrange(N_VARS), rng.random() < 0.5),
            seed=105,
        )

    def test_compose(self):
        run_cases(
            2,
            lambda mgr, rng, f, g: mgr.compose(
                f, level_of(mgr, rng.randrange(N_VARS)), g),
            lambda rng, fm, gm: mask_compose(
                fm, rng.randrange(N_VARS), gm),
            seed=106,
        )

    def test_exists(self):
        def picks(rng):
            return [i for i in range(N_VARS) if rng.random() < 0.4]

        def apply_mask(rng, fm):
            for i in picks(rng):
                fm = mask_restrict(fm, i, False) | mask_restrict(fm, i, True)
            return fm

        run_cases(
            1,
            lambda mgr, rng, f: mgr.exists(
                f, [level_of(mgr, i) for i in picks(rng)]),
            apply_mask,
            seed=107,
        )

    def test_forall(self):
        def picks(rng):
            return [i for i in range(N_VARS) if rng.random() < 0.4]

        def apply_mask(rng, fm):
            for i in picks(rng):
                fm = mask_restrict(fm, i, False) & mask_restrict(fm, i, True)
            return fm

        run_cases(
            1,
            lambda mgr, rng, f: mgr.forall(
                f, [level_of(mgr, i) for i in picks(rng)]),
            apply_mask,
            seed=108,
        )

    def test_sat_count(self):
        rng = random.Random(109)
        mgr = fresh()
        for case in range(CASES):
            node, mask = random_expr(mgr, rng)
            expected = bin(mask).count("1")
            assert mgr.sat_count(node, N_VARS) == expected, f"case {case}"
            ref = mgr.ref(node)
            churn(mgr, rng, case)
            assert mgr.sat_count(ref.deref(), N_VARS) == expected, \
                f"case {case} (post-churn)"


@pytest.mark.fuzz
class TestScaledSweep:
    """Deep randomized soak for the scheduled fuzz lane.

    One mixed stream exercising every operator with churn after each
    case; runs ``2 * CASES`` iterations (REPRO_FUZZ_SCALE multiplies).
    """

    def test_mixed_operator_soak(self):
        rng = random.Random(4242)
        mgr = fresh()
        pinned = []  # (ref, mask) — long-lived handles across many GCs
        for case in range(2 * CASES):
            node, mask = random_expr(mgr, rng, depth=4)
            assert table_of(mgr, node) == mask
            if rng.random() < 0.2:
                pinned.append((mgr.ref(node), mask))
            if len(pinned) > 12:
                pinned = pinned[-8:]  # drop old handles: nodes may die
            churn(mgr, rng, case)
            for ref, pinned_mask in pinned:
                assert table_of(mgr, ref.deref()) == pinned_mask
