"""Unit tests for hierarchy elaboration."""

import pytest

from repro.errors import ElaborationError
from repro.frontend import elaborate, parse_source
from repro.frontend.elaborate import const_eval


def elab(src, top=None):
    return elaborate(parse_source(src), top=top)


class TestTopDetection:
    def test_single_module(self):
        design = elab("module tb; endmodule")
        assert design.top == "tb"

    def test_auto_top(self):
        design = elab("""
            module leaf; endmodule
            module tb; leaf u(); endmodule
        """)
        assert design.top == "tb"

    def test_ambiguous_top(self):
        with pytest.raises(ElaborationError):
            elab("module a; endmodule module b; endmodule")

    def test_explicit_top(self):
        design = elab("module a; endmodule module b; endmodule", top="a")
        assert design.top == "a"

    def test_unknown_top(self):
        with pytest.raises(ElaborationError):
            elab("module a; endmodule", top="zzz")

    def test_no_modules(self):
        with pytest.raises(ElaborationError):
            elaborate({})


class TestNets:
    def test_widths_and_kinds(self):
        design = elab("""
            module tb;
              reg [7:0] r;
              wire [3:0] w;
              integer i;
              time t;
              reg [3:0] mem [0:7];
            endmodule
        """)
        assert design.net("r").width == 8
        assert design.net("w").width == 4 and design.net("w").is_net
        assert design.net("i").width == 32 and design.net("i").signed
        assert design.net("t").width == 64
        assert design.net("mem").array == (0, 7)

    def test_descending_and_ascending_ranges(self):
        design = elab("module tb; reg [0:7] a; reg [7:0] b; endmodule")
        assert design.net("a").width == 8
        assert design.net("a").bit_offset(0) == 7
        assert design.net("b").bit_offset(0) == 0

    def test_parameterized_widths(self):
        design = elab("""
            module tb;
              parameter W = 6;
              reg [W-1:0] r;
            endmodule
        """)
        assert design.net("r").width == 6

    def test_duplicate_decl(self):
        with pytest.raises(ElaborationError):
            elab("module tb; reg a; reg a; endmodule")

    def test_output_reg_merge(self):
        design = elab("""
            module m(q); output [3:0] q; reg [3:0] q; endmodule
            module tb; wire [3:0] q; m u(q); endmodule
        """)
        assert design.net("u.q").kind == "reg"
        assert design.net("u.q").width == 4


class TestHierarchy:
    SRC = """
        module inner(input [3:0] a, output [3:0] y);
          parameter K = 1;
          assign y = a + K;
        endmodule
        module tb;
          wire [3:0] y1, y2;
          reg [3:0] x;
          inner u1 (.a(x), .y(y1));
          inner #(.K(3)) u2 (.a(x), .y(y2));
        endmodule
    """

    def test_instance_paths(self):
        design = elab(self.SRC)
        assert "u1.a" in design.nets
        assert "u2.y" in design.nets

    def test_parameter_override(self):
        design = elab(self.SRC)
        assert design.scopes["u1"].params["K"] == 1
        assert design.scopes["u2"].params["K"] == 3

    def test_port_connection_assigns(self):
        design = elab(self.SRC)
        # one internal assign per instance + 2 port hookups per instance
        assert len(design.assigns) == 6

    def test_positional_params(self):
        design = elab("""
            module inner(output [3:0] y);
              parameter A = 1, B = 2;
              assign y = A + B;
            endmodule
            module tb; wire [3:0] y; inner #(5, 6) u (y); endmodule
        """)
        assert design.scopes["u"].params == {"A": 5, "B": 6}

    def test_unknown_module(self):
        with pytest.raises(ElaborationError):
            elab("module tb; nothere u(); endmodule")

    def test_recursive_instantiation(self):
        with pytest.raises(ElaborationError):
            elab("module a; a u(); endmodule", top="a")

    def test_unknown_port(self):
        with pytest.raises(ElaborationError):
            elab("""
                module inner(input a); endmodule
                module tb; reg x; inner u (.zzz(x)); endmodule
            """)

    def test_too_many_ordered_connections(self):
        with pytest.raises(ElaborationError):
            elab("""
                module inner(input a); endmodule
                module tb; reg x, y; inner u (x, y); endmodule
            """)

    def test_inout_aliasing(self):
        design = elab("""
            module inner(inout w); endmodule
            module tb; wire shared; inner u (.w(shared)); endmodule
        """)
        assert design.scopes["u"].locals["w"] == "shared"
        assert "u.w" not in design.nets

    def test_hierarchical_lookup(self):
        design = elab(self.SRC)
        scope = design.scopes[""]
        assert scope.lookup(("u1", "a")) == "u1.a"
        assert scope.lookup(("nothere", "x")) is None


class TestGates:
    def test_and_gate_becomes_assign(self):
        design = elab("""
            module tb; wire o; reg a, b; and g(o, a, b); endmodule
        """)
        assert len(design.assigns) == 1

    def test_multi_input_gate(self):
        design = elab("""
            module tb; wire o; reg a, b, c, d; nand g(o, a, b, c, d); endmodule
        """)
        assert len(design.assigns) == 1

    def test_bufif(self):
        design = elab("""
            module tb; wire o; reg d, en; bufif1 g(o, d, en); endmodule
        """)
        assert len(design.assigns) == 1

    def test_bad_terminal_count(self):
        with pytest.raises(ElaborationError):
            elab("module tb; wire o; not g(o); endmodule")


class TestConstEval:
    def design_scope(self, params=""):
        design = elab(f"module tb; {params} endmodule")
        return design.scopes[""]

    def test_arithmetic(self):
        scope = self.design_scope("parameter A = 2 + 3 * 4;")
        assert scope.params["A"] == 14

    def test_comparison_and_ternary(self):
        scope = self.design_scope("parameter A = (2 > 1) ? 10 : 20;")
        assert scope.params["A"] == 10

    def test_param_chain(self):
        scope = self.design_scope("parameter A = 4; parameter B = A * A;")
        assert scope.params["B"] == 16

    def test_division_by_zero(self):
        with pytest.raises(ElaborationError):
            self.design_scope("parameter A = 1 / 0;")

    def test_xz_rejected(self):
        with pytest.raises(ElaborationError):
            self.design_scope("parameter A = 4'b10xz;")

    def test_non_parameter_identifier(self):
        with pytest.raises(ElaborationError):
            elab("module tb; reg r; parameter A = r; endmodule")
