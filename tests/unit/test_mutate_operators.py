"""Mutation operators: walker exclusions and match/apply behavior.

The walker contract (see ``repro.mutate.operators``) is that sites
which would mutate the *question* (checker arguments), the schedule
(delays), or structural constants (part-select bounds, replication
counts, for-loop headers) are never offered to the operators.  These
tests pin that contract point by point, then exercise each operator's
match predicate and its ``before -> after`` application.
"""

from __future__ import annotations

import copy

import pytest

from repro.errors import MutationError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_source
from repro.frontend.printer import print_expr, print_modules
from repro.mutate import OPERATORS, apply_site, matching_points
from repro.mutate.operators import (
    TAG_BOUNDS, TAG_DELAY, TAG_FOR_HEADER, TAG_FUNCTION, TAG_SENSITIVITY,
    module_points,
)

# One module exercising every excluded context: delays, part-select
# bounds, a replication count, a for header, $assert/$display args,
# a function body and a sensitivity list.
CONTEXTS = """
module m;
  reg [3:0] a, b;
  reg [4:0] q;
  reg c;
  integer i;
  wire [3:0] w;

  assign w = a & b;

  function [3:0] dbl;
    input [3:0] v;
    begin
      dbl = v + 4'd1;
    end
  endfunction

  always @(a or b) begin
    #3 a = b + 4'd1;
    q = {2{a[2:1]}} + dbl(b);
  end

  initial begin
    for (i = 0; i < 3; i = i + 1) begin
      b = b + 4'd2;
    end
    $display("sum", a + b);
    $assert(a == b);
  end
endmodule
"""


@pytest.fixture
def contexts():
    return parse_source(CONTEXTS)["m"]


def tagged(module, *tags):
    want = set(tags)
    return [p for p in module_points(module) if want <= p.tags]


# ---------------------------------------------------------------------------
# the walk


def test_walk_is_deterministic(contexts):
    lines = [(type(p.node).__name__, p.line, tuple(sorted(p.tags)))
             for p in module_points(contexts)]
    again = parse_source(CONTEXTS)["m"]
    assert lines == [(type(p.node).__name__, p.line,
                      tuple(sorted(p.tags)))
                     for p in module_points(again)]


def test_delay_expressions_are_tagged(contexts):
    delay_nodes = {print_expr(p.node) for p in tagged(contexts, TAG_DELAY)
                   if isinstance(p.node, ast.Expr)}
    assert "3" in delay_nodes
    # no operator may fire inside a delay context
    for name, op in OPERATORS.items():
        for point in tagged(contexts, TAG_DELAY):
            if isinstance(point.node, ast.Number):
                assert not op.matches(point), name


def test_bounds_and_repl_counts_are_tagged(contexts):
    bound_numbers = [p for p in tagged(contexts, TAG_BOUNDS)
                     if isinstance(p.node, ast.Number)]
    # a[2:1] contributes msb+lsb, {2{...}} contributes the count
    assert len(bound_numbers) >= 3
    for point in bound_numbers:
        assert not OPERATORS["const"].matches(point)


def test_for_header_excluded_but_condition_mutable(contexts):
    header_assigns = [p for p in tagged(contexts, TAG_FOR_HEADER)
                      if isinstance(p.node, ast.BlockingAssign)]
    assert header_assigns, "for init/step should be walked (tagged)"
    for point in header_assigns:
        assert not OPERATORS["stuck0"].matches(point)
        assert not OPERATORS["nbaswap"].matches(point)
    # the loop condition i < 3 is NOT a header: cmpswap can hit it
    cmp_sites = matching_points(contexts, "cmpswap")
    assert any("i < 3" in print_expr(p.node) for p in cmp_sites
               if isinstance(p.node, ast.Binary))


def test_system_task_args_are_not_walked(contexts):
    # $display("sum", a + b) and $assert(a == b): neither the a + b
    # nor the a == b inside may appear as a site.
    all_prints = {print_expr(p.node) for p in module_points(contexts)
                  if isinstance(p.node, ast.Expr)}
    assert "a == b" not in all_prints
    assert '"sum"' not in all_prints


def test_function_bodies_tagged_and_nbaswap_refuses(contexts):
    fn_assigns = [p for p in tagged(contexts, TAG_FUNCTION)
                  if isinstance(p.node, ast.BlockingAssign)]
    assert fn_assigns, "function bodies should be walked"
    for point in fn_assigns:
        assert not OPERATORS["nbaswap"].matches(point)
        # other operators still apply inside functions
    assert any(OPERATORS["stuck0"].matches(p) for p in fn_assigns)


def test_sensitivity_items_tagged(contexts):
    sens = tagged(contexts, TAG_SENSITIVITY)
    assert sens, "event-control items should be walked (tagged)"
    for point in sens:
        if isinstance(point.node, ast.Number):
            assert not OPERATORS["const"].matches(point)


def test_lhs_never_walked():
    module = parse_source("""
module m;
  reg [3:0] y;
  reg [1:0] s;
  always @(s) y[s] = 1'b1;
endmodule
""")["m"]
    # the LHS index expression s must not be a site; the RHS 1'b1 is.
    # (@(s) in the sensitivity list IS walked — filter it by tag.)
    sites = [print_expr(p.node) for p in module_points(module)
             if isinstance(p.node, ast.Expr)
             and TAG_SENSITIVITY not in p.tags]
    assert sites.count("s") == 0


# ---------------------------------------------------------------------------
# operators


def test_registry_order_is_canonical():
    assert list(OPERATORS) == ["stuck0", "stuck1", "opswap", "cmpswap",
                               "const", "nbaswap"]


def test_opswap_tables_are_involutions():
    for name in ("opswap", "cmpswap"):
        table = OPERATORS[name].table
        assert OPERATORS[name].involution
        for key, value in table.items():
            assert table[value] == key, (name, key)


def test_opswap_apply_describes_before_after(contexts):
    sites = matching_points(contexts, "opswap")
    assert sites
    node = sites[0].node
    before = print_expr(node)
    description = OPERATORS["opswap"].apply(sites[0])
    after = print_expr(node)
    assert description == f"{before} -> {after}"
    assert before != after


def test_const_perturb_wraps_modulo_width():
    module = parse_source("""
module m;
  reg [1:0] x;
  initial x = 2'b11;
endmodule
""")["m"]
    sites = matching_points(module, "const")
    assert len(sites) == 1
    OPERATORS["const"].apply(sites[0])
    assert sites[0].node.bits == "00"  # 3 + 1 mod 4


def test_stuck0_skips_already_zero_rhs():
    module = parse_source("""
module m;
  reg [3:0] x, y;
  initial begin
    x = 0;
    y = 4'b0000;
    x = y;
  end
endmodule
""")["m"]
    sites = matching_points(module, "stuck0")
    assert len(sites) == 1  # only x = y; the zero spellings are skipped
    description = OPERATORS["stuck0"].apply(sites[0])
    assert "'b0" in description.split("->")[1]


def test_stuck1_literal_widens_to_any_lhs():
    from repro import open_sim

    sim = open_sim("""
module m;
  reg [6:0] x;
  initial x = 7'd5;
endmodule
""".replace("7'd5", "(~'b0)"))
    sim.run()
    assert sim.value("x").to_verilog_bits() == "1111111"


def test_nbaswap_round_trips_through_replace():
    module = parse_source("""
module m;
  reg a, clk;
  always @(posedge clk) a <= !a;
endmodule
""")["m"]
    sites = matching_points(module, "nbaswap")
    assert len(sites) == 1
    OPERATORS["nbaswap"].apply(sites[0])
    assert "a = (!a);" in print_modules({"m": module})
    # re-enumerate: the swapped assign matches again at the same ordinal
    sites = matching_points(module, "nbaswap")
    assert len(sites) == 1
    OPERATORS["nbaswap"].apply(sites[0])
    assert "a <= (!a);" in print_modules({"m": module})


def test_nbaswap_skips_blocking_with_intra_event():
    module = parse_source("""
module m;
  reg a, b, clk;
  initial a = @(posedge clk) b;
endmodule
""")["m"]
    assert matching_points(module, "nbaswap") == []


# ---------------------------------------------------------------------------
# apply_site


def test_apply_site_errors():
    modules = parse_source("module m; reg x; initial x = 1'b0; endmodule")
    with pytest.raises(MutationError, match="unknown module"):
        apply_site(modules, "opswap", "nope", 0)
    with pytest.raises(MutationError, match="unknown mutation operator"):
        apply_site(modules, "zap", "m", 0)
    with pytest.raises(MutationError, match="out of range"):
        apply_site(modules, "opswap", "m", 0)  # no binary ops at all


def test_apply_site_mutates_only_the_addressed_site(contexts):
    pristine = print_modules({"m": copy.deepcopy(contexts)})
    modules = {"m": contexts}
    apply_site(modules, "opswap", "m", 0)
    mutated = print_modules(modules)
    assert mutated != pristine
    # exactly one line differs
    diff = [pair for pair in zip(pristine.splitlines(),
                                 mutated.splitlines())
            if pair[0] != pair[1]]
    assert len(diff) == 1
