"""Unit tests for the checkpoint file format and its failure modes.

Every way a checkpoint can be wrong — truncated, bit-flipped, header
mangled, wrong design, wrong semantic options, or actively malicious
(pickle payload referencing classes) — must surface as a
:class:`CheckpointError` with a readable message, never a bare
traceback or, worse, silent acceptance.
"""

import hashlib
import json
import pickle

import pytest

import repro
from repro import SimOptions
from repro.compile import compile_design
from repro.errors import CheckpointError
from repro.frontend import elaborate, parse_source
from repro.guard import (
    FORMAT_VERSION, design_fingerprint, load_checkpoint, read_header,
    save_checkpoint,
)
from repro.guard.checkpoint import MAGIC
from repro.guard.faults import corrupt_header, flip_byte, truncate_file

SRC = """
    module tb; reg [3:0] a; reg [7:0] acc; reg clk; integer i;
      initial begin acc = 0; clk = 0;
        for (i = 0; i < 8; i = i + 1) #5 clk = ~clk; end
      always @(posedge clk) begin a <= $random; acc <= acc + a; end
      initial #50 $finish;
    endmodule
"""

OTHER_SRC = """
    module tb; reg [7:0] b;
      initial begin b = 1; #10 $finish; end
    endmodule
"""


def compile_src(source=SRC):
    return compile_design(elaborate(parse_source(source)))


@pytest.fixture
def ckpt(tmp_path):
    """A valid mid-run checkpoint of SRC, paused at time 20."""
    sim = repro.open_sim(SRC)
    sim.run(until=20)
    path = str(tmp_path / "mid.ckpt")
    save_checkpoint(sim.kernel, path)
    return path


class TestFormat:
    def test_header_roundtrip(self, ckpt):
        header = read_header(ckpt)
        assert header["version"] == FORMAT_VERSION
        assert header["top"] == "tb"
        assert header["sim_time"] == 20  # paused at the until=20 bound
        assert header["design"] == design_fingerprint(compile_src())
        assert header["options"]["accumulation"] == "full"
        with open(ckpt, "rb") as handle:
            assert handle.readline() == MAGIC

    def test_checksum_covers_payload(self, ckpt):
        header = read_header(ckpt)
        with open(ckpt, "rb") as handle:
            handle.readline()
            handle.readline()
            payload = handle.read()
        assert len(payload) == header["payload_bytes"]
        assert hashlib.sha256(payload).hexdigest() == \
            header["payload_sha256"]

    def test_load_continues_to_same_end(self, ckpt):
        ref = repro.open_sim(SRC).run()
        kern = load_checkpoint(compile_src(), ckpt)
        resumed = kern.run()
        assert resumed.time == ref.time
        assert resumed.finished
        assert resumed.output == ref.output

    def test_atomic_write_leaves_no_temp_files(self, ckpt, tmp_path):
        assert [p.name for p in tmp_path.iterdir()] == ["mid.ckpt"]

    def test_fingerprint_distinguishes_designs(self):
        assert design_fingerprint(compile_src()) != \
            design_fingerprint(compile_src(OTHER_SRC))


class TestRejection:
    def test_truncated_payload(self, ckpt):
        truncate_file(ckpt, 200)
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(compile_src(), ckpt)

    def test_flipped_payload_byte(self, ckpt):
        flip_byte(ckpt, -10)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(compile_src(), ckpt)

    def test_corrupt_header(self, ckpt):
        corrupt_header(ckpt)
        with pytest.raises(CheckpointError, match="header"):
            read_header(ckpt)

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "not.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"GARBAGE\nmore garbage\n")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(compile_src(), path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(compile_src(), str(tmp_path / "absent.ckpt"))

    def test_future_format_version(self, ckpt):
        _rewrite_header(ckpt, lambda h: {**h, "version": FORMAT_VERSION + 1})
        with pytest.raises(CheckpointError, match="not supported"):
            load_checkpoint(compile_src(), ckpt)

    def test_wrong_design_rejected(self, ckpt):
        with pytest.raises(CheckpointError, match="different design"):
            load_checkpoint(compile_src(OTHER_SRC), ckpt)

    def test_semantic_option_mismatch_rejected(self, ckpt):
        from repro.compile.instructions import AccumulationMode

        with pytest.raises(CheckpointError, match="accumulation"):
            load_checkpoint(
                compile_src(), ckpt,
                options=SimOptions(accumulation=AccumulationMode.NONE))

    def test_operational_options_are_free(self, ckpt):
        # GC/reorder knobs are not semantic: resume may change them.
        kern = load_checkpoint(
            compile_src(), ckpt,
            options=SimOptions(gc_threshold=16, dyn_reorder=True,
                               reorder_threshold=32))
        result = kern.run()
        assert result.finished

    def test_pickle_payload_cannot_name_classes(self, ckpt):
        # An attacker-crafted payload that references a class (the
        # classic pickle RCE vector) must be refused outright, even
        # with a self-consistent checksum.
        evil = pickle.dumps({"mgr": repro.SymbolicSimulator})
        _rewrite_payload(ckpt, evil)
        with pytest.raises(CheckpointError, match="builtin"):
            load_checkpoint(compile_src(), ckpt)


def _read_parts(path):
    with open(path, "rb") as handle:
        magic = handle.readline()
        header = json.loads(handle.readline())
        payload = handle.read()
    return magic, header, payload


def _write_parts(path, magic, header, payload):
    with open(path, "wb") as handle:
        handle.write(magic)
        handle.write(json.dumps(header).encode())
        handle.write(b"\n")
        handle.write(payload)


def _rewrite_header(path, mutate):
    magic, header, payload = _read_parts(path)
    _write_parts(path, magic, mutate(header), payload)


def _rewrite_payload(path, payload):
    magic, header, _ = _read_parts(path)
    header["payload_bytes"] = len(payload)
    header["payload_sha256"] = hashlib.sha256(payload).hexdigest()
    _write_parts(path, magic, header, payload)
