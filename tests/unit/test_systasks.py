"""Unit tests for $display formatting."""

import pytest

from repro.bdd import BddManager
from repro.fourval import FourVec
from repro.sim.systasks import format_display, render_value


@pytest.fixture
def m():
    return BddManager()


def const(m, value, width):
    return FourVec.from_int(m, value, width)


class TestRenderValue:
    def test_decimal(self, m):
        assert render_value(const(m, 165, 8), "d") == "165"

    def test_binary(self, m):
        assert render_value(const(m, 5, 4), "b") == "0101"

    def test_hex_grouping(self, m):
        assert render_value(const(m, 0xA5, 8), "h") == "a5"
        assert render_value(const(m, 0x1F, 5), "h") == "1f"

    def test_octal(self, m):
        assert render_value(const(m, 0o17, 6), "o") == "17"

    def test_hex_with_xz(self, m):
        assert render_value(FourVec.from_verilog_bits(m, "xxxx"), "h") == "x"
        assert render_value(FourVec.from_verilog_bits(m, "zzzz"), "h") == "z"
        assert render_value(FourVec.from_verilog_bits(m, "1xz0"), "h") == "X"

    def test_decimal_with_xz(self, m):
        assert render_value(FourVec.from_verilog_bits(m, "xx"), "d") == "x"
        assert render_value(FourVec.from_verilog_bits(m, "1x"), "d") == "X"

    def test_char(self, m):
        assert render_value(const(m, ord("A"), 8), "c") == "A"

    def test_string(self, m):
        vec = FourVec.from_int(m, int.from_bytes(b"hi", "big"), 16)
        assert render_value(vec, "s") == "hi"

    def test_symbolic_placeholder(self, m):
        sym = FourVec.fresh_symbol(m, 6, "s")
        assert render_value(sym, "d") == "<sym:6>"


class TestFormatDisplay:
    def evaluate(self, value):
        return value  # tests pass FourVec directly instead of CExpr

    def test_plain_strings_join(self, m):
        assert format_display(["a", "b"], self.evaluate) == "ab"

    def test_format_consumes_args(self, m):
        out = format_display(["x=%d y=%b", const(m, 3, 4), const(m, 5, 4)],
                             self.evaluate)
        assert out == "x=3 y=0101"

    def test_bare_value_prints_decimal(self, m):
        assert format_display([const(m, 9, 8)], self.evaluate) == "9"

    def test_missing_arg_keeps_specifier(self, m):
        assert format_display(["%d"], self.evaluate) == "%d"

    def test_percent_escape(self, m):
        assert format_display(["100%%"], self.evaluate) == "100%"

    def test_module_specifier(self, m):
        assert format_display(["in %m"], self.evaluate,
                              scope_name="top") == "in top"

    def test_width_padding(self, m):
        assert format_display(["[%6d]", const(m, 42, 8)],
                              self.evaluate) == "[    42]"
        assert format_display(["[%-6d]", const(m, 42, 8)],
                              self.evaluate) == "[42    ]"

    def test_time_specifier(self, m):
        assert format_display(["t=%0t", const(m, 99, 64)],
                              self.evaluate) == "t=99"
