"""Unit tests for the repro.obs metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricError, MetricsRegistry, Series,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_callback_backed(self):
        g = Gauge()
        box = {"v": 7}
        g.set_function(lambda: box["v"])
        assert g.snapshot() == 7
        box["v"] = 9
        assert g.snapshot() == 9

    def test_set_clears_callback(self):
        g = Gauge()
        g.set_function(lambda: 42)
        g.set(1)
        assert g.snapshot() == 1


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        h = Histogram(buckets=[1, 10, 100])
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 555.5
        assert h.min == 0.5
        assert h.max == 500
        assert h.mean == pytest.approx(138.875)

    def test_bucketing_including_overflow(self):
        h = Histogram(buckets=[1, 10])
        for v in (0.1, 1.0, 2, 10, 11):
            h.observe(v)
        # upper-bound inclusive: 0.1 and 1.0 in le=1; 2 and 10 in le=10
        assert h.counts == [2, 2, 1]

    def test_quantile_estimate(self):
        h = Histogram(buckets=[1, 2, 4, 8])
        for v in (0.5, 1.5, 1.6, 3, 7):
            h.observe(v)
        assert h.quantile(0.0) == 0.0 or h.quantile(0.0) <= 1
        assert h.quantile(0.5) == 2
        assert h.quantile(1.0) == 8
        with pytest.raises(MetricError):
            h.quantile(1.5)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(MetricError):
            Histogram(buckets=[])

    def test_snapshot_schema(self):
        h = Histogram(buckets=[1])
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"][-1]["le"] == "+inf"
        assert sum(b["count"] for b in snap["buckets"]) == 1


class TestSeries:
    def test_appends_in_order(self):
        s = Series()
        s.sample(0, 1)
        s.sample(5, 2)
        assert s.samples == [(0, 1), (5, 2)]
        assert s.last() == (5, 2)

    def test_same_x_overwrites(self):
        s = Series()
        s.sample(3, 10)
        s.sample(3, 12)
        assert s.samples == [(3, 12)]

    def test_empty_last(self):
        assert Series().last() is None


class TestLabels:
    def test_labeled_children_are_distinct(self):
        reg = MetricsRegistry()
        fam = reg.counter("events", labels=("kind",))
        fam.labels(kind="proc").inc()
        fam.labels(kind="proc").inc()
        fam.labels(kind="nba").inc(3)
        assert fam.labels(kind="proc").value == 2
        assert fam.labels(kind="nba").value == 3

    def test_wrong_label_names_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("events", labels=("kind",))
        with pytest.raises(MetricError):
            fam.labels(wrong="x")
        with pytest.raises(MetricError):
            fam.labels()  # missing the label entirely

    def test_unlabeled_family_is_the_instrument(self):
        reg = MetricsRegistry()
        fam = reg.counter("total")
        fam.inc(4)
        assert fam.value == 4

    def test_labeled_family_rejects_direct_use(self):
        reg = MetricsRegistry()
        fam = reg.counter("events", labels=("kind",))
        with pytest.raises(MetricError):
            fam.inc()

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        fam = reg.gauge("g", labels=("n",))
        fam.labels(n=1).set(5)
        assert fam.labels(n="1").value == 5


class TestRegistry:
    def test_redeclaration_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_conflicting_redeclaration_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")
        reg.counter("y", labels=("a",))
        with pytest.raises(MetricError):
            reg.counter("y", labels=("b",))

    def test_contains_and_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert "a" in reg and "c" not in reg
        assert reg.names() == ["a", "b"]

    def test_snapshot_shape_and_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", "help text").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=[1]).observe(0.5)
        reg.series("s").sample(0, 10)
        fam = reg.counter("lc", labels=("kind",))
        fam.labels(kind="proc").inc()

        snap = reg.snapshot()
        assert snap["schema"] == "repro.obs.metrics/1"
        by_name = {}
        for m in snap["metrics"]:
            by_name.setdefault(m["name"], []).append(m)
        assert by_name["c"][0]["value"] == 2
        assert by_name["c"][0]["help"] == "help text"
        assert by_name["g"][0]["value"] == 1.5
        assert by_name["h"][0]["value"]["count"] == 1
        assert by_name["s"][0]["value"] == [[0, 10]]
        assert by_name["lc"][0]["labels"] == {"kind": "proc"}

        path = tmp_path / "m.json"
        reg.write_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(reg.to_json())

    def test_snapshot_evaluates_gauge_callbacks(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.gauge("live").set_function(lambda: box["v"])
        box["v"] = 123
        snap = reg.snapshot()
        (metric,) = snap["metrics"]
        assert metric["value"] == 123
