"""Unit tests for the VCD writer."""

import io

import pytest

from repro.bdd import BddManager
from repro.fourval import FourVec
from repro.sim.vcd import VcdWriter, _identifier, _value_chars


@pytest.fixture
def m():
    return BddManager()


class TestIdentifiers:
    def test_unique_and_printable(self):
        seen = set()
        for i in range(500):
            ident = _identifier(i)
            assert ident not in seen
            assert all(33 <= ord(c) <= 126 for c in ident)
            seen.add(ident)

    def test_rollover_to_two_chars(self):
        assert len(_identifier(0)) == 1
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2


class TestValueChars:
    def test_constants(self, m):
        assert _value_chars(FourVec.from_verilog_bits(m, "10xz")) == "10xz"

    def test_symbolic_projects_to_x(self, m):
        sym = FourVec.fresh_symbol(m, 3, "s")
        assert _value_chars(sym) == "xxx"

    def test_mixed(self, m):
        sym = FourVec.fresh_symbol(m, 1, "s")
        mixed = FourVec(m, [sym.bits[0],
                            FourVec.from_int(m, 1, 1).bits[0]])
        assert _value_chars(mixed) == "1x"


class TestWriter:
    def make(self):
        stream = io.StringIO()
        writer = VcdWriter(stream)
        return writer, stream

    def test_header_structure(self, m):
        writer, stream = self.make()
        writer.declare("clk", 1)
        writer.declare("u.data", 8)
        writer.write_header("tb")
        text = stream.getvalue()
        assert "$timescale 1ns $end" in text
        assert "$scope module tb $end" in text
        assert "$scope module u $end" in text
        assert "$var wire 1" in text
        assert "$var wire 8" in text
        assert "data [7:0]" in text
        assert text.count("$upscope $end") == 2
        assert "$enddefinitions $end" in text

    def test_records_dedupe(self, m):
        writer, stream = self.make()
        writer.declare("v", 4)
        writer.write_header("tb")
        start = len(stream.getvalue())
        writer.record(0, "v", FourVec.from_int(m, 5, 4))
        writer.record(0, "v", FourVec.from_int(m, 5, 4))  # duplicate
        writer.record(3, "v", FourVec.from_int(m, 6, 4))
        body = stream.getvalue()[start:]
        assert body == "#0\nb0101 !\n#3\nb0110 !\n"

    def test_scalar_format(self, m):
        writer, stream = self.make()
        writer.declare("c", 1)
        writer.write_header("tb")
        writer.record(2, "c", FourVec.from_int(m, 1, 1))
        assert "\n1!" in stream.getvalue()

    def test_undeclared_net_ignored(self, m):
        writer, stream = self.make()
        writer.declare("a", 1)
        writer.write_header("tb")
        before = stream.getvalue()
        writer.record(1, "other", FourVec.from_int(m, 1, 1))
        assert stream.getvalue() == before

    def test_declare_after_header_ignored(self, m):
        writer, stream = self.make()
        writer.declare("a", 1)
        writer.write_header("tb")
        writer.declare("late", 2)
        writer.record(1, "late", FourVec.from_int(m, 1, 2))
        assert "late" not in stream.getvalue().split("$enddefinitions")[1]

    def test_dump_all(self, m):
        writer, stream = self.make()
        writer.declare("a", 2)
        writer.declare("b", 1)
        writer.write_header("tb")
        values = {"a": FourVec.from_int(m, 2, 2), "b": FourVec.all_x(m, 1)}
        writer.dump_all(0, lambda name: values.get(name))
        text = stream.getvalue()
        assert "$dumpvars" in text
        assert "b10 " in text
        assert "x" in text.split("$dumpvars")[1]
