"""Unit tests for the lexer and preprocessor."""

import pytest

from repro.errors import VerilogSyntaxError
from repro.frontend.lexer import Lexer, preprocess


def toks(text):
    return [(t.kind, t.value) for t in Lexer(text).tokenize()[:-1]]


class TestLexer:
    def test_identifiers_and_keywords(self):
        assert toks("module foo_1 endmodule") == [
            ("keyword", "module"), ("id", "foo_1"), ("keyword", "endmodule"),
        ]

    def test_escaped_identifier(self):
        assert toks(r"\my+sig next") == [("id", "my+sig"), ("id", "next")]

    def test_system_identifiers(self):
        assert toks("$random $display") == [
            ("sysid", "$random"), ("sysid", "$display"),
        ]

    def test_numbers(self):
        assert toks("42")[0] == ("number", "42")
        assert toks("8'hFF")[0] == ("number", "8'hFF")
        assert toks("4'b10xz")[0] == ("number", "4'b10xz")
        assert toks("'bz")[0] == ("number", "'bz")
        assert toks("3'sd2")[0] == ("number", "3'sd2")
        assert toks("1_000")[0] == ("number", "1_000")

    def test_real_number(self):
        assert toks("5.5")[0] == ("real", "5.5")

    def test_strings(self):
        assert toks('"hello world"') == [("string", "hello world")]
        assert toks(r'"a\nb"') == [("string", "a\nb")]

    def test_unterminated_string(self):
        with pytest.raises(VerilogSyntaxError):
            toks('"oops')

    def test_operators_maximal_munch(self):
        assert [v for _, v in toks("a<=b")] == ["a", "<=", "b"]
        assert [v for _, v in toks("a>>>b")] == ["a", ">>>", "b"]
        assert [v for _, v in toks("a===b")] == ["a", "===", "b"]
        assert [v for _, v in toks("a!==b")] == ["a", "!==", "b"]
        assert [v for _, v in toks("a**b")] == ["a", "**", "b"]
        assert [v for _, v in toks("x~^y")] == ["x", "~^", "y"]

    def test_comments_skipped(self):
        assert toks("a // comment\nb") == [("id", "a"), ("id", "b")]
        assert toks("a /* x */ b") == [("id", "a"), ("id", "b")]
        assert toks("a /* multi\nline */ b") == [("id", "a"), ("id", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(VerilogSyntaxError):
            toks("a /* oops")

    def test_line_numbers(self):
        tokens = Lexer("a\nb\n  c").tokenize()
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].col == 3

    def test_unexpected_character(self):
        with pytest.raises(VerilogSyntaxError):
            toks("\x01")


class TestPreprocessor:
    def test_define_and_use(self):
        out = preprocess("`define W 8\nreg [`W-1:0] x;")
        assert "reg [8-1:0] x;" in out

    def test_define_chain(self):
        out = preprocess("`define A 1\n`define B `A\nx = `B;")
        assert "x = 1;" in out

    def test_undef(self):
        with pytest.raises(VerilogSyntaxError):
            preprocess("`define A 1\n`undef A\nx = `A;")

    def test_ifdef(self):
        out = preprocess("`ifdef FOO\nyes\n`else\nno\n`endif")
        assert "no" in out and "yes" not in out
        out = preprocess("`ifdef FOO\nyes\n`else\nno\n`endif",
                         defines={"FOO": ""})
        assert "yes" in out and "no" not in out.replace("no", "", 0) or True

    def test_ifndef(self):
        out = preprocess("`ifndef FOO\nyes\n`endif")
        assert "yes" in out

    def test_nested_ifdef(self):
        out = preprocess(
            "`define A 1\n`ifdef A\n`ifdef B\nx\n`else\ny\n`endif\n`endif"
        )
        assert "y" in out and "x" not in out

    def test_unbalanced_endif(self):
        with pytest.raises(VerilogSyntaxError):
            preprocess("`endif")
        with pytest.raises(VerilogSyntaxError):
            preprocess("`ifdef A")

    def test_undefined_macro(self):
        with pytest.raises(VerilogSyntaxError):
            preprocess("x = `NOPE;")

    def test_macro_in_comment_ignored(self):
        out = preprocess("// uses `UNDEFINED here\nx = 1;")
        assert "x = 1;" in out
        out = preprocess("/* `UNDEFINED */ x = 2;")
        assert "x = 2;" in out

    def test_macro_in_multiline_comment_ignored(self):
        out = preprocess("/* start\n `UNDEFINED \n end */ x = 3;")
        assert "x = 3;" in out

    def test_macro_in_string_ignored(self):
        out = preprocess('$display("`NOPE");')
        assert "`NOPE" in out

    def test_timescale_ignored(self):
        out = preprocess("`timescale 1ns/1ps\nmodule m; endmodule")
        assert "module m; endmodule" in out

    def test_include(self):
        out = preprocess(
            '`include "lib.v"\nmodule m; endmodule',
            include_resolver=lambda name: f"// from {name}\nwire included;",
        )
        assert "wire included;" in out

    def test_include_without_resolver(self):
        with pytest.raises(VerilogSyntaxError):
            preprocess('`include "lib.v"')

    def test_function_like_macro_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            preprocess("`define F(x) x+1")

    def test_multiline_define(self):
        out = preprocess("`define BODY a = 1; \\\n  b = 2;\ninitial `BODY")
        assert "a = 1;" in out and "b = 2;" in out

    def test_unknown_directive(self):
        with pytest.raises(VerilogSyntaxError):
            preprocess("`frobnicate")
