"""Structural tests on compiled programs: instruction layout, labels,
shadow allocation, callsites."""

import pytest

from repro import compile_design, elaborate, parse_source
from repro.compile.instructions import (
    BackEdge, BranchDone, Delay, End, Exec, ForkSpawn, Goto, IfSplit, Join,
    JoinCheck, LoopSplit, PrioAdjustGoto, PrioDec, WaitCond, WaitEvent,
)


def compile_src(src, top=None):
    return compile_design(elaborate(parse_source(src), top=top))


def instrs(program, index=0):
    return program.processes[index].instructions


def kinds(program, index=0):
    return [type(i).__name__ for i in instrs(program, index)]


class TestIfLayout:
    def test_if_else_shape(self):
        program = compile_src("""
            module tb; reg c; reg [3:0] x;
              initial begin
                if (c) x = 1;
                else x = 2;
              end
            endmodule
        """)
        assert kinds(program) == [
            "IfSplit", "Exec", "Join", "Exec", "Join", "PrioDec", "End",
        ]
        split = instrs(program)[0]
        then_join, else_join = instrs(program)[2], instrs(program)[4]
        assert split.else_target == 3       # start of else body
        assert then_join.target == else_join.target == 5  # the PrioDec

    def test_if_without_else_has_empty_else_branch(self):
        program = compile_src("""
            module tb; reg c; reg [3:0] x;
              initial if (c) x = 1;
            endmodule
        """)
        assert kinds(program) == [
            "IfSplit", "Exec", "Join", "Join", "PrioDec", "End",
        ]
        split = instrs(program)[0]
        assert split.else_target == 3       # the empty-else Join

    def test_loop_shape(self):
        program = compile_src("""
            module tb; reg [3:0] n;
              initial while (n != 0) n = n - 1;
            endmodule
        """)
        assert kinds(program) == [
            "PrioAdjustGoto", "LoopSplit", "Exec", "BackEdge", "Join",
            "PrioDec", "End",
        ]
        inc = instrs(program)[0]
        assert inc.delta == 2 and inc.target == 1
        split = instrs(program)[1]
        assert split.exit_target == 4       # the exit Join
        back = instrs(program)[3]
        assert back.target == 1             # the LoopSplit

    def test_always_gets_back_edge(self):
        program = compile_src("""
            module tb; reg clk;
              always @(clk) ;
            endmodule
        """)
        assert kinds(program) == ["WaitEvent", "BackEdge", "End"]
        assert instrs(program)[1].target == 0


class TestForkLayout:
    def test_fork_shape(self):
        program = compile_src("""
            module tb;
              initial begin
                fork
                  #1;
                  #2;
                join
              end
            endmodule
        """)
        names = kinds(program)
        assert names == [
            "Exec",        # mask reset
            "ForkSpawn",
            "Delay", "BranchDone",
            "Delay", "BranchDone",
            "JoinCheck", "PrioDec", "End",
        ]
        spawn = instrs(program)[1]
        assert spawn.branch_targets == [4]  # branch 2 entry
        for done in (instrs(program)[3], instrs(program)[5]):
            assert done.join_target == 6


class TestShadowsAndCallsites:
    def test_case_allocates_selector_shadow(self):
        program = compile_src("""
            module tb; reg [1:0] s; reg [3:0] x;
              initial case (s) 0: x = 1; default: x = 2; endcase
            endmodule
        """)
        shadows = [n for n in program.design.nets if n.startswith("$shadow")]
        assert any(".case" in n for n in shadows)

    def test_intra_delay_allocates_shadow(self):
        program = compile_src("""
            module tb; reg [3:0] x, y;
              initial x = #3 y;
            endmodule
        """)
        shadows = [n for n in program.design.nets if ".ia" in n]
        assert len(shadows) == 1

    def test_callsites_registered_in_order(self):
        program = compile_src("""
            module tb; reg [3:0] a, b;
              initial begin
                a = $random;
                b = $randomxz;
              end
            endmodule
        """)
        assert [c.kind for c in program.callsites] == \
            ["$random", "$randomxz"]
        assert program.callsites[0].index == 0
        assert program.callsites[1].index == 1

    def test_repeat_allocates_counter(self):
        program = compile_src("""
            module tb; reg [3:0] x;
              initial repeat (3) x = x + 1;
            endmodule
        """)
        assert any(".rep" in n for n in program.design.nets)


class TestContinuousAssignCompilation:
    def test_port_hookups_become_assigns(self):
        program = compile_src("""
            module child(input [3:0] i, output [3:0] o);
              assign o = i;
            endmodule
            module tb; reg [3:0] x; wire [3:0] y;
              child u(.i(x), .o(y));
            endmodule
        """)
        assert len(program.assigns) == 3  # internal + 2 hookups

    def test_concat_target_splits(self):
        program = compile_src("""
            module tb; reg [3:0] a; wire [1:0] hi, lo;
              assign {hi, lo} = a;
            endmodule
        """)
        assign = program.assigns[0]
        assert [t.net for t in assign.targets] == ["hi", "lo"]
        assert assign.total_width == 4

    def test_support_computed(self):
        program = compile_src("""
            module tb; reg [3:0] a, b; wire [3:0] y;
              assign y = a & b;
            endmodule
        """)
        assert program.assigns[0].support == frozenset(["a", "b"])
