"""``repro.api`` — the one request/options parsing surface.

Golden parse-equivalence: the three pre-existing entry points (batch
manifests, mutate manifests, the ``symsim`` CLI) are thin adapters
over :mod:`repro.api`, so identical inputs must yield *equal*
``SimOptions`` / ``ResourceBudgets`` / ``RetryPolicy`` objects through
every path.  Plus the semantic/operational split the journal and the
serve result cache share, and the single-line ``RequestError``
contract.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import api
from repro.batch import load_manifest
from repro.batch.manifest import load_policy
from repro.batch.queue import RetryPolicy
from repro.compile.instructions import AccumulationMode
from repro.errors import RequestError
from repro.guard import ResourceBudgets
from repro.mutate.manifest import load_campaign
from repro.sim import SimOptions

OPTIONS_SPEC = {
    "accumulation": "none",
    "seed": 7,
    "gc_threshold": 5000,
    "stop_on_violation": False,
    "budget": {"wall_seconds": 30, "max_live_nodes": 100000},
}


# ---------------------------------------------------------------------
# parse_options / parse_budgets / parse_retry
# ---------------------------------------------------------------------


def test_parse_options_golden():
    options = api.parse_options(OPTIONS_SPEC, "test")
    assert options.accumulation is AccumulationMode.NONE
    assert options.concrete_random == 7
    assert options.gc_threshold == 5000
    assert options.stop_on_violation is False
    assert options.budgets == ResourceBudgets(
        wall_seconds=30, max_live_nodes=100000)


def test_seed_is_sugar_for_concrete_random():
    assert api.parse_options({"seed": 3}, "t") == \
        api.parse_options({"concrete_random": 3}, "t")


def test_accumulation_accepts_name_value_and_enum():
    for form in ("none", "NONE", AccumulationMode.NONE):
        options = api.parse_options({"accumulation": form}, "t")
        assert options.accumulation is AccumulationMode.NONE
    with pytest.raises(RequestError, match="unknown accumulation mode"):
        api.parse_options({"accumulation": "bogus"}, "t")


def test_unknown_option_is_single_line_error():
    with pytest.raises(RequestError, match="unknown option 'frobnicate'"):
        api.parse_options({"frobnicate": 1}, "somewhere")
    try:
        api.parse_options({"frobnicate": 1}, "somewhere")
    except RequestError as exc:
        assert "\n" not in str(exc)
        assert str(exc).startswith("somewhere:")


def test_parse_budgets_rejects_unknown_keys():
    with pytest.raises(RequestError, match="unknown budget keys"):
        api.parse_budgets({"wall_minutes": 5}, "t")
    with pytest.raises(RequestError, match="must be an object"):
        api.parse_budgets([1, 2], "t")


def test_parse_retry_golden():
    policy = api.parse_retry(
        {"max_attempts": 4, "backoff_base": 0.5,
         "retry_statuses": ["aborted", "hang"], "lease_timeout": 120},
        "t")
    assert policy == RetryPolicy(
        max_attempts=4, backoff_base=0.5,
        retry_statuses=frozenset({"aborted", "hang"}), lease_timeout=120)


def test_parse_retry_folds_policy_validation_into_request_error():
    with pytest.raises(RequestError, match="bad retry object"):
        api.parse_retry({"max_attempts": 0}, "t")
    with pytest.raises(RequestError, match="unknown retry keys"):
        api.parse_retry({"attempts": 3}, "t")
    with pytest.raises(RequestError, match="must be an array"):
        api.parse_retry({"retry_statuses": "aborted"}, "t")


# ---------------------------------------------------------------------
# the semantic/operational split
# ---------------------------------------------------------------------


def test_operational_options_are_real_fields():
    fields = {f.name for f in dataclasses.fields(SimOptions)}
    assert api.OPERATIONAL_OPTIONS <= fields


def test_semantic_options_exclude_operational_knobs():
    base = SimOptions()
    operational = dataclasses.replace(
        base, heartbeat_every=5, heartbeat_name="x",
        vcd_path="/tmp/x.vcd", compile_tier=not base.compile_tier)
    assert api.semantic_options(base) == api.semantic_options(operational)
    semantic = dataclasses.replace(base, concrete_random=9)
    assert api.semantic_options(base) != api.semantic_options(semantic)


def test_semantic_options_are_json_stable():
    options = api.parse_options(OPTIONS_SPEC, "t")
    folded = api.semantic_options(options)
    assert json.loads(json.dumps(folded, sort_keys=True)) == folded


# ---------------------------------------------------------------------
# run specs
# ---------------------------------------------------------------------

TRIVIAL = "module t; initial $finish; endmodule"


def test_resolve_design_exactly_one_way(tmp_path):
    with pytest.raises(RequestError, match="exactly one"):
        api.resolve_design({}, str(tmp_path), "t")
    with pytest.raises(RequestError, match="exactly one"):
        api.resolve_design({"source": TRIVIAL, "path": "x.v"},
                           str(tmp_path), "t")


def test_resolve_design_requires_absolute_path_without_base_dir(tmp_path):
    design = tmp_path / "t.v"
    design.write_text(TRIVIAL)
    # the HTTP entry point has no manifest directory to anchor on
    with pytest.raises(RequestError, match="must be absolute"):
        api.resolve_design({"path": "t.v"}, None, "t")
    source, path, _, _ = api.resolve_design(
        {"path": str(design)}, None, "t")
    assert path == str(design) and source is None


def test_resolve_design_inline_reads_the_file(tmp_path):
    design = tmp_path / "t.v"
    design.write_text(TRIVIAL)
    source, path, _, _ = api.resolve_design(
        {"path": "t.v"}, str(tmp_path), "t", inline=True)
    assert source == TRIVIAL and path is None


def test_parse_run_merges_defaults_key_wise():
    defaults = {"until": 100, "vcd": True,
                "options": {"seed": 1, "gc_threshold": 9}}
    request = api.parse_run(
        {"name": "a", "source": TRIVIAL, "options": {"seed": 2}},
        defaults=defaults)
    assert request.until == 100 and request.vcd is True
    assert request.options.concrete_random == 2  # spec wins
    assert request.options.gc_threshold == 9     # default survives


def test_parse_run_design_identity_never_from_defaults():
    with pytest.raises(RequestError, match="exactly one"):
        api.parse_run({"name": "a"}, defaults={"source": TRIVIAL})


def test_parse_run_server_assigned_name_overrides_spec():
    request = api.parse_run({"name": "client", "source": TRIVIAL},
                            name="r000001")
    assert request.name == "r000001"


# ---------------------------------------------------------------------
# golden parse-equivalence across the three adapters
# ---------------------------------------------------------------------


def test_batch_manifest_parses_through_api(tmp_path):
    manifest = tmp_path / "jobs.json"
    manifest.write_text(json.dumps({
        "defaults": {"until": 50},
        "retry": {"max_attempts": 2, "retry_statuses": ["aborted"]},
        "runs": [{"name": "one", "source": TRIVIAL,
                  "options": dict(OPTIONS_SPEC)}],
    }))
    (request,) = load_manifest(str(manifest))
    assert request.options == api.parse_options(OPTIONS_SPEC, "x")
    assert request.until == 50
    assert load_policy(str(manifest)) == api.parse_retry(
        {"max_attempts": 2, "retry_statuses": ["aborted"]}, "x")


def test_mutate_manifest_parses_through_api(tmp_path):
    manifest = tmp_path / "campaign.json"
    manifest.write_text(json.dumps({
        "source": TRIVIAL,
        "options": dict(OPTIONS_SPEC),
    }))
    config, _workers = load_campaign(str(manifest))
    assert config.options == api.parse_options(OPTIONS_SPEC, "x")
    assert config.source == TRIVIAL


def test_cli_flags_parse_through_api(tmp_path):
    from repro.cli import build_arg_parser

    design = tmp_path / "t.v"
    design.write_text(TRIVIAL)
    args = build_arg_parser().parse_args([
        str(design), "--accumulation", "none", "--random-seed", "7",
        "--gc-threshold", "5000", "--continue-on-violation",
        "--budget-seconds", "30", "--budget-nodes", "100000",
    ])
    options = api.options_from_flags(args)
    golden = api.parse_options(
        {**OPTIONS_SPEC,
         "budget": {"wall_seconds": 30.0, "max_live_nodes": 100000,
                    "max_concretizations": 8}},
        "x")
    # the CLI's operational extras (echo, obs paths) sit on top of the
    # shared semantic schema — the fingerprint halves must agree
    assert api.semantic_options(options)["concrete_random"] == 7
    assert options.budgets == golden.budgets
    assert options.accumulation == golden.accumulation
    assert options.gc_threshold == golden.gc_threshold
    assert options.stop_on_violation is False


def test_adapters_preserve_single_line_errors(tmp_path):
    from repro.errors import BatchError, MutationError

    manifest = tmp_path / "jobs.json"
    manifest.write_text(json.dumps(
        {"runs": [{"name": "one", "source": TRIVIAL,
                   "options": {"bogus": 1}}]}))
    with pytest.raises(BatchError, match="unknown option 'bogus'"):
        load_manifest(str(manifest))

    campaign = tmp_path / "campaign.json"
    campaign.write_text(json.dumps(
        {"source": TRIVIAL, "options": {"bogus": 1}}))
    with pytest.raises(MutationError, match="unknown option 'bogus'"):
        load_campaign(str(campaign))
