"""Unit tests for the resource guard: budgets, mitigation ladder,
fault injection, and selective concretization.

The contract under test (docs/ROBUSTNESS.md): every budget breach and
every injected fault ends in a *structured* outcome — a
:class:`SimulationAborted` carrying a :class:`BudgetReport` and the
flushed partial result, an ``interrupted`` result, or a clean recovery
— never a bare traceback or a MemoryError.
"""

import pytest

import repro
from repro import SimOptions
from repro.bdd import BddManager, FALSE, TRUE
from repro.errors import SimulationAborted, SimulationError
from repro.guard import (
    BudgetReport, Fault, FaultInjector, Guard, ResourceBudgets,
    process_rss_mb,
)

SRC = """
    module tb; reg [3:0] a; reg clk; integer i;
      initial begin clk = 0; for (i = 0; i < 12; i = i + 1) #5 clk = ~clk; end
      always @(posedge clk) a <= $random;
      initial #60 $finish;
    endmodule
"""

# Symbolic state that *accumulates*: acc depends on every $random ever
# injected, so live BDD size grows cycle over cycle (~2.4k live nodes
# by $finish) — enough pressure to drive the concretize rung.
GROW_SRC = """
    module tb; reg [3:0] a; reg [7:0] acc; reg clk; integer i;
      initial begin acc = 0; clk = 0;
        for (i = 0; i < 12; i = i + 1) #5 clk = ~clk; end
      always @(posedge clk) begin a = $random; acc = acc + {a, a}; end
      initial #70 $finish;
    endmodule
"""


def run_guarded(budgets=None, faults=None, source=SRC, **opts):
    sim = repro.open_sim(
        source, options=SimOptions(budgets=budgets, faults=faults, **opts))
    return sim.run(), sim


class TestBudgets:
    def test_wall_clock_budget_aborts_with_report(self):
        with pytest.raises(SimulationAborted) as info:
            run_guarded(budgets=ResourceBudgets(wall_seconds=0.0))
        report = info.value.budget_report
        assert report.breached == "wall_seconds"
        assert report.limit == 0.0
        # the partial result is flushed and attached, not lost
        partial = info.value.partial_result
        assert partial is not None
        assert partial.stats.events_processed > 0
        assert "wall_seconds" in report.describe()

    def test_event_budget_aborts(self):
        with pytest.raises(SimulationAborted) as info:
            run_guarded(budgets=ResourceBudgets(max_events=3))
        report = info.value.budget_report
        assert report.breached == "max_events"
        assert report.observed > 3

    def test_no_budget_runs_clean(self):
        result, sim = run_guarded(budgets=ResourceBudgets())
        assert result.finished
        assert sim.kernel._guard is not None

    def test_rss_probe_shape(self):
        rss = process_rss_mb()
        if rss is not None:  # Linux
            assert rss > 1.0

    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(SimulationError):
            Guard(checkpoint_every=5)
        with pytest.raises(SimulationError):
            Guard(checkpoint_every=0, checkpoint_dir="/tmp")


class TestMitigationLadder:
    def test_gc_rung_recovers_dead_blowup(self):
        # 50k junk nodes appear at safe point 2; the node budget trips
        # and the GC rung sweeps them — the run then completes.
        result, sim = run_guarded(
            budgets=ResourceBudgets(max_live_nodes=40_000),
            faults=FaultInjector(
                [Fault("arena-blowup", at_step=2, magnitude=50_000)]),
        )
        assert result.finished
        assert not sim.mgr.concretized  # GC alone was enough
        assert sim.mgr.total_nodes < 40_000

    def test_concretize_rung_burns_symbols_and_logs(self):
        result, sim = run_guarded(
            budgets=ResourceBudgets(max_live_nodes=300), source=GROW_SRC)
        assert result.finished
        assert sim.mgr.concretized  # ladder had to concretize
        guard_lines = [l for l in result.output if l.startswith("[guard]")]
        assert guard_lines
        assert any("concretized $random variable" in l for l in guard_lines)

    def test_exhausted_ladder_aborts_with_actions(self):
        # A budget below even the design's concrete baseline cannot be
        # met; the ladder runs out and aborts with its action log.
        with pytest.raises(SimulationAborted) as info:
            run_guarded(budgets=ResourceBudgets(max_live_nodes=1,
                                                max_concretizations=2),
                        source=GROW_SRC)
        report = info.value.budget_report
        assert report.breached == "max_live_nodes"
        assert any("gc reclaimed" in a for a in report.actions)
        assert any("sift reorder" in a for a in report.actions)
        assert len(report.concretized) <= 2

    def test_concretization_keeps_results_sound(self):
        # An assertion that can fail: concretization may narrow the
        # space, but any reported violation must still resimulate
        # concretely — the witness drives a real run.
        src = GROW_SRC.replace(
            "initial #70 $finish;",
            "always @(negedge clk) $assert(a != 15);\n"
            "      initial #70 $finish;")
        sim = repro.open_sim(
            src, options=SimOptions(
                budgets=ResourceBudgets(max_live_nodes=300),
                stop_on_violation=False))
        result = sim.run()
        for violation in result.violations:
            # stop-at-violation options: the recorded value lists only
            # cover the trace up to the violation time
            concrete = repro.resimulate_violation(sim.program, violation)
            assert concrete.violations


class TestFaultInjection:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("cosmic-ray", at_step=1)

    def test_safe_point_error_becomes_structured_abort(self):
        with pytest.raises(SimulationAborted) as info:
            run_guarded(faults=FaultInjector(
                [Fault("safe-point-error", at_step=2)]))
        report = info.value.budget_report
        assert report.breached == "guard-failure"
        assert "RuntimeError" in str(report.observed)
        assert info.value.partial_result is not None

    def test_clock_skew_forces_deadline_breach(self):
        with pytest.raises(SimulationAborted) as info:
            run_guarded(
                budgets=ResourceBudgets(wall_seconds=1000.0),
                faults=FaultInjector(
                    [Fault("clock-skew", at_step=2, magnitude=10_000)]))
        assert info.value.budget_report.breached == "wall_seconds"

    def test_interrupt_fault_yields_interrupted_result(self):
        result, sim = run_guarded(
            faults=FaultInjector([Fault("interrupt", at_step=2)]))
        assert result.interrupted
        assert not result.finished
        assert result.time < 60  # stopped early, at a safe point

    def test_fault_plan_fires_once_and_is_recorded(self):
        injector = FaultInjector(
            [Fault("arena-blowup", at_step=1, magnitude=10)])
        run_guarded(faults=injector)
        assert len(injector.fired) == 1


class TestConcretizeManager:
    """Manager-level semantics of the concretize primitive."""

    def test_restricts_all_roots_consistently(self, mgr: BddManager):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        conj = mgr.ref(mgr.and_(a, b))
        disj = mgr.ref(mgr.or_(a, b))
        value = mgr.concretize(0, value=True)
        assert value is True
        assert mgr.concretized == {0: True}
        # with a := 1, a&b == b and a|b == TRUE — canonically
        assert conj.node == mgr.var(1)
        assert disj.node == TRUE

    def test_auto_value_picks_smaller_cofactor(self, mgr: BddManager):
        a = mgr.new_var("a")
        others = [mgr.new_var(f"x{i}") for i in range(4)]
        # f = a AND parity(x): the a:=0 cofactor is constant FALSE,
        # a:=1 keeps the whole parity chain — guard must choose 0.
        parity = FALSE
        for var in others:
            parity = mgr.xor(parity, var)
        f = mgr.ref(mgr.and_(a, parity))
        chosen = mgr.concretize(0)
        assert chosen is False
        assert f.node == FALSE

    def test_concretize_survives_reorder(self, mgr: BddManager):
        for i in range(4):
            mgr.new_var(f"v{i}")
        mgr.concretize(2, value=True)
        mgr.reorder([3, 2, 1, 0])
        # level renamed by the permutation, choice preserved
        assert mgr.concretized == {1: True}

    def test_stats_counters(self, mgr: BddManager):
        mgr.new_var("a")
        mgr.concretize(0, value=False)
        stats = mgr.cache_stats()
        assert stats["concretize_runs"] == 1
        assert stats["concretize_seconds"] >= 0.0
