"""Unit tests on the compiled tier's block construction
(:mod:`repro.compile.codegen`) and the raw-word value store it writes
through (:meth:`repro.sim.state.SimState.store_raw`)."""

import pickle

import pytest

import repro
from repro import SimOptions, compile_design, elaborate, parse_source
from repro.compile.codegen import CompiledTables, compiled_tables
from repro.compile.instructions import AccumulationMode
from repro.fourval import FourVec


def compile_src(src, top=None):
    return compile_design(elaborate(parse_source(src), top=top))


STRAIGHT_LINE = """
    module tb; reg [7:0] a, b;
      initial begin
        a = 8'd3;        // line 4
        b = a + 1;       // line 5
        a = b ^ a;       // line 6
      end
    endmodule
"""

BRANCHY = """
    module tb; reg c; reg [3:0] x;
      initial begin
        x = 1;
        if (c) x = 2;
        else x = 3;
        x = x + 1;
      end
    endmodule
"""


class TestBlockFusion:
    def test_straight_line_fuses_to_one_block(self):
        program = compile_src(STRAIGHT_LINE)
        tables = CompiledTables(program, AccumulationMode.FULL, True)
        proc = program.processes[0]
        block = tables.ensure(0, 0)
        # The whole body (Execs + PrioDec + End) is one fused block.
        assert block.fused == len(proc.instructions)
        assert block.start == 0
        assert "def _b(kern, frame):" in block.source

    def test_site_seq_matches_sites(self):
        program = compile_src(STRAIGHT_LINE)
        tables = CompiledTables(program, AccumulationMode.FULL, True)
        block = tables.ensure(0, 0)
        assert len(block.site_seq) == block.fused
        counted = {}
        for label in block.site_seq:
            counted[label] = counted.get(label, 0) + 1
        assert counted == dict(block.sites)

    def test_splits_bound_blocks(self):
        program = compile_src(BRANCHY)
        tables = CompiledTables(program, AccumulationMode.FULL, True)
        entry = tables.ensure(0, 0)
        # The entry block ends at the IfSplit; the branch bodies are
        # separate blocks.
        proc = program.processes[0]
        assert entry.fused < len(proc.instructions)

    def test_entry_points_prebuilt(self):
        program = compile_src(BRANCHY)
        tables = CompiledTables(program, AccumulationMode.FULL, True)
        assert tables.blocks_built >= 3   # entry + both branch targets
        assert tables.fused_instructions >= len(
            program.processes[0].instructions)

    def test_lazy_ensure_builds_unpredicted_label(self):
        program = compile_src(STRAIGHT_LINE)
        tables = CompiledTables(program, AccumulationMode.FULL, True)
        before = tables.blocks_built
        mid = tables.ensure(0, 1)   # not a static entry point
        assert mid is tables.tables[0][1]
        assert tables.blocks_built == before + 1
        assert mid is tables.ensure(0, 1)   # cached on second ask

    def test_stats_shape(self):
        program = compile_src(STRAIGHT_LINE)
        tables = CompiledTables(program, AccumulationMode.FULL, False)
        stats = tables.stats()
        assert set(stats) == {"blocks", "fused_instructions",
                              "build_seconds", "specialize"}
        assert stats["specialize"] is False


class TestTableCache:
    def test_keyed_by_mode_and_specialize(self):
        program = compile_src(STRAIGHT_LINE)
        a = compiled_tables(program, AccumulationMode.FULL, True)
        b = compiled_tables(program, AccumulationMode.FULL, True)
        c = compiled_tables(program, AccumulationMode.FULL, False)
        d = compiled_tables(program, AccumulationMode.NONE, True)
        assert a is b
        assert a is not c
        assert a is not d

    def test_cache_does_not_survive_pickle(self):
        # Batch workers ship Programs by value; blocks must rebuild in
        # the worker, never cross the pickle boundary.
        program = compile_src(STRAIGHT_LINE)
        compiled_tables(program, AccumulationMode.FULL, True)
        clone = pickle.loads(pickle.dumps(program))
        assert getattr(clone, "_codegen_cache", None) is None
        rebuilt = compiled_tables(clone, AccumulationMode.FULL, True)
        assert rebuilt.blocks_built > 0


class TestRawWordStore:
    def _sim(self, compile_tier=True):
        return repro.open_sim(STRAIGHT_LINE, options=SimOptions(
            compile_tier=compile_tier, echo_output=False))

    def test_value_materializes_exact_vector(self):
        sim = self._sim()
        sim.run()
        state = sim.kernel.state
        # Force a raw slot and check the materialized vector equals a
        # generic register-shaped store.
        state.store_raw("a", 0x2A)
        assert state.known_word("a") == 0x2A
        vec = state.value("a")
        assert isinstance(vec, FourVec)
        assert vec.known_int() == 0x2A
        ref = FourVec.from_int(sim.mgr, 0x2A, 8)
        assert vec.bits == ref.bits
        assert vec.signed == ref.signed
        # Materialization is cached: the slot now holds the vector.
        assert state.peek("a") is vec

    def test_signed_nets_materialize_signed(self):
        sim = repro.open_sim("""
            module tb; integer n; initial n = 5; endmodule
        """, options=SimOptions(compile_tier=True, echo_output=False))
        sim.run()
        state = sim.kernel.state
        state.store_raw("n", 9)
        assert state.value("n").signed is True

    def test_raw_slots_invisible_to_gc_roots(self):
        sim = self._sim()
        sim.run()
        state = sim.kernel.state
        state.store_raw("a", 1)
        for _ in state.bdd_roots():
            pass   # must not raise on int slots
        state.bdd_remap(lambda node: node, {})
        assert state.known_word("a") == 1

    def test_snapshot_materializes_raw_slots(self):
        sim = self._sim()
        sim.run()
        state = sim.kernel.state
        state.store_raw("a", 7)
        image = state.snapshot()
        bits, signed = image["values"]["a"]
        ref = FourVec.from_int(sim.mgr, 7, 8)
        assert [tuple(bit) for bit in bits] == list(ref.bits)
        assert signed == ref.signed


class TestKernelWiring:
    def test_tables_deferred_until_startup(self):
        sim = repro.open_sim(STRAIGHT_LINE, options=SimOptions(
            compile_tier=True, echo_output=False))
        assert sim.kernel._ctables is None
        sim.run()
        assert sim.kernel._ctables is not None

    def test_no_fastpath_disables_specialization(self):
        sim = repro.open_sim(STRAIGHT_LINE, options=SimOptions(
            compile_tier=True, no_fastpath=True, echo_output=False))
        sim.run()
        assert sim.kernel._ctables.specialize is False
        assert sim.kernel._cspec is False

    def test_interpreter_leaves_no_tables(self):
        sim = repro.open_sim(STRAIGHT_LINE, options=SimOptions(
            compile_tier=False, echo_output=False))
        sim.run()
        assert sim.kernel._ctables is None
        assert sim.kernel.compile_tier_stats() is None
