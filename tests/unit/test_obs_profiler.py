"""Unit tests for the hot-spot profiler and site labeling."""

import pytest

from repro.compile.instructions import CompiledProcess, Exec
from repro.obs.profiler import HotSpotProfiler, event_label
from repro.sim.scheduler import Event, REGION_ACTIVE, REGION_NBA


def make_proc_event(name="tb.p", lines=(3, 7), pc=0):
    process = CompiledProcess(name=name, kind="always", index=0)
    for line in lines:
        process.emit(Exec(lambda kern, frame: None, line))
    return Event(time=0, region=REGION_ACTIVE, prio=0, kind="proc",
                 process=process, pc=pc, control=1)


class TestEventLabel:
    def test_proc_label_uses_source_line(self):
        assert event_label(make_proc_event(pc=0)) == "tb.p:3"
        assert event_label(make_proc_event(pc=1)) == "tb.p:7"

    def test_assign_and_drive_share_index_label(self):
        assign = Event(time=0, region=REGION_ACTIVE, prio=0, kind="assign",
                       index=4)
        drive = Event(time=0, region=REGION_ACTIVE, prio=0, kind="drive",
                      index=4)
        assert event_label(assign) == event_label(drive) == "assign#4"

    def test_nba_bucket(self):
        nba = Event(time=0, region=REGION_NBA, prio=0, kind="nba",
                    apply=lambda kern: None)
        assert event_label(nba) == "nba"


class TestHotSpotProfiler:
    def test_pop_accumulation(self):
        profiler = HotSpotProfiler()
        event = make_proc_event()
        profiler.record_pop(event, 0.5, 100, instructions=12)
        profiler.record_pop(event, 0.25, 50, instructions=3)
        site = profiler.sites["tb.p:3"]
        assert site.pops == 2
        assert site.cpu_seconds == 0.75
        assert site.bdd_nodes == 150
        assert site.instructions == 15
        assert site.kind == "proc"

    def test_merge_attribution(self):
        profiler = HotSpotProfiler()
        event = make_proc_event()
        profiler.record_merge(event)
        profiler.record_merge(event)
        assert profiler.sites["tb.p:3"].merges == 2
        assert profiler.sites["tb.p:3"].pops == 0

    def test_top_orders_by_requested_key(self):
        profiler = HotSpotProfiler()
        hot = make_proc_event(name="tb.hot")
        cold = make_proc_event(name="tb.cold")
        profiler.record_pop(hot, 1.0, 10)
        profiler.record_pop(cold, 0.1, 999)
        assert profiler.top(2, by="cpu_seconds")[0].label == "tb.hot:3"
        assert profiler.top(2, by="bdd_nodes")[0].label == "tb.cold:3"
        assert len(profiler.top(1)) == 1

    def test_top_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            HotSpotProfiler().top(by="vibes")

    def test_totals_and_document(self):
        profiler = HotSpotProfiler()
        profiler.record_pop(make_proc_event(), 0.5, 100, instructions=1)
        profiler.record_merge(make_proc_event())
        totals = profiler.totals()
        assert totals["pops"] == 1
        assert totals["merges"] == 1
        document = profiler.to_dict(meta={"design": "tb"},
                                    bdd={"ite_hits": 5, "ite_misses": 5})
        assert document["schema"] == "repro.obs.profile/1"
        assert document["meta"]["design"] == "tb"
        assert document["bdd"]["ite_hits"] == 5
        (site,) = document["sites"]
        assert site["label"] == "tb.p:3"
