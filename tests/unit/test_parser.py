"""Unit tests for the Verilog parser (AST shapes)."""

import pytest

from repro.errors import VerilogSyntaxError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_source


def parse_one(body, name="m"):
    mods = parse_source(f"module {name}; {body} endmodule")
    return mods[name]


def parse_stmt(stmt_text):
    module = parse_one(f"initial {stmt_text}")
    return module.processes[0].body


def parse_expr(expr_text):
    stmt = parse_stmt(f"x = {expr_text};")
    return stmt.rhs


class TestModuleStructure:
    def test_empty_module(self):
        mods = parse_source("module a; endmodule module b; endmodule")
        assert set(mods) == {"a", "b"}

    def test_duplicate_module(self):
        with pytest.raises(VerilogSyntaxError):
            parse_source("module a; endmodule module a; endmodule")

    def test_ports_1995_style(self):
        mods = parse_source(
            "module m(a, b, c); input a; output [3:0] b; inout c; endmodule"
        )
        assert mods["m"].port_names == ["a", "b", "c"]
        kinds = {d.name: d.kind for d in mods["m"].decls}
        assert kinds["a"] == "input"
        assert kinds["c"] == "inout"

    def test_ports_ansi_style(self):
        mods = parse_source(
            "module m(input clk, input [7:0] d, output reg [7:0] q); endmodule"
        )
        module = mods["m"]
        assert module.port_names == ["clk", "d", "q"]
        assert any(d.name == "q" and d.kind == "reg" for d in module.decls)

    def test_parameters(self):
        module = parse_one("parameter W = 8, D = W * 2; localparam X = 1;")
        names = [d.name for d in module.decls]
        assert names == ["W", "D", "X"]
        assert module.decls[2].kind == "localparam"

    def test_ansi_parameters(self):
        mods = parse_source("module m #(parameter W = 4) (input a); endmodule")
        assert any(d.kind == "parameter" for d in mods["m"].decls)

    def test_reg_decl_with_range_and_array(self):
        module = parse_one("reg [7:0] mem [0:15];")
        decl = module.decls[0]
        assert decl.kind == "reg"
        assert decl.range is not None
        assert decl.array is not None

    def test_integer_is_signed(self):
        module = parse_one("integer i;")
        assert module.decls[0].signed

    def test_decl_initializer(self):
        module = parse_one("reg x = 1;")
        assert module.decls[0].init is not None

    def test_event_decl(self):
        module = parse_one("event ev;")
        assert module.decls[0].kind == "event"

    def test_continuous_assign(self):
        module = parse_one("wire w; assign w = 1; assign #3 w = 0;")
        assert len(module.assigns) == 2
        assert module.assigns[1].delay is not None

    def test_gate_instances(self):
        module = parse_one("wire o, a, b; and g1(o, a, b); not (n, a);")
        assert len(module.gates) == 2
        assert module.gates[0].gate == "and"
        assert module.gates[1].name == ""

    def test_module_instance_named(self):
        mods = parse_source("""
            module child(input a, output b); endmodule
            module top; wire x, y;
              child #(.P(3)) u1 (.a(x), .b(y));
            endmodule
        """)
        inst = mods["top"].instances[0]
        assert inst.module == "child"
        assert inst.name == "u1"
        assert inst.connections[0].name == "a"
        assert inst.param_overrides[0].name == "P"

    def test_module_instance_ordered(self):
        mods = parse_source("""
            module child(a, b); input a; output b; endmodule
            module top; wire x, y; child u1 (x, y); endmodule
        """)
        inst = mods["top"].instances[0]
        assert inst.connections[0].name is None

    def test_defparam_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            parse_one("defparam u1.W = 3;")

    def test_task_and_function(self):
        module = parse_one("""
            task t; input [3:0] a; output b; begin b = a[0]; end endtask
            function [3:0] f; input [3:0] x; f = x + 1; endfunction
        """)
        assert module.tasks[0].name == "t"
        assert len(module.tasks[0].ports) == 2
        assert module.functions[0].name == "f"


class TestStatements:
    def test_blocking_and_nonblocking(self):
        stmt = parse_stmt("begin a = 1; b <= 2; c = #3 4; d <= #1 5; end")
        kinds = [type(s).__name__ for s in stmt.stmts]
        assert kinds == ["BlockingAssign", "NonBlockingAssign",
                        "BlockingAssign", "NonBlockingAssign"]
        assert stmt.stmts[2].intra_delay is not None

    def test_if_else_chain(self):
        stmt = parse_stmt("if (a) x = 1; else if (b) x = 2; else x = 3;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_stmt, ast.If)

    def test_case_variants(self):
        for kw in ("case", "casez", "casex"):
            stmt = parse_stmt(
                f"{kw} (x) 1: a = 1; 2, 3: a = 2; default: a = 0; endcase"
            )
            assert stmt.kind == kw
            assert len(stmt.items) == 3
            assert stmt.items[1].exprs and len(stmt.items[1].exprs) == 2
            assert stmt.items[2].exprs == []

    def test_loops(self):
        assert isinstance(parse_stmt("for (i = 0; i < 4; i = i + 1) x = i;"),
                          ast.For)
        assert isinstance(parse_stmt("while (x) x = x - 1;"), ast.While)
        assert isinstance(parse_stmt("repeat (3) x = 1;"), ast.Repeat)
        assert isinstance(parse_stmt("forever #5 clk = ~clk;"), ast.Forever)

    def test_delay_and_event_control(self):
        stmt = parse_stmt("#5 x = 1;")
        assert isinstance(stmt, ast.DelayStmt)
        stmt = parse_stmt("@(posedge clk) q = d;")
        assert isinstance(stmt, ast.EventStmt)
        assert stmt.items[0].edge == "posedge"
        stmt = parse_stmt("@(a or negedge b, c) x = 1;")
        assert [i.edge for i in stmt.items] == [None, "negedge", None]

    def test_event_star(self):
        stmt = parse_stmt("@* x = a + b;")
        assert stmt.items == []
        stmt = parse_stmt("@(*) x = a;")
        assert stmt.items == []

    def test_event_named_no_parens(self):
        stmt = parse_stmt("@ev x = 1;")
        assert stmt.items[0].expr.name == "ev"

    def test_wait(self):
        stmt = parse_stmt("wait (ready) x = 1;")
        assert isinstance(stmt, ast.Wait)

    def test_named_block_and_disable(self):
        stmt = parse_stmt("begin : blk integer i; disable blk; end")
        assert stmt.name == "blk"
        assert stmt.decls[0].kind == "integer"
        assert isinstance(stmt.stmts[0], ast.Disable)

    def test_event_trigger(self):
        assert isinstance(parse_stmt("-> ev;"), ast.EventTrigger)

    def test_task_enable(self):
        stmt = parse_stmt("do_it(1, x);")
        assert isinstance(stmt, ast.TaskCall)
        assert not stmt.is_system

    def test_system_task(self):
        stmt = parse_stmt('$display("hi %d", x);')
        assert stmt.is_system
        assert stmt.name == "$display"

    def test_fork_join(self):
        stmt = parse_stmt("fork #1 x = 1; #2 y = 2; join")
        assert isinstance(stmt, ast.ForkJoin)
        assert len(stmt.branches) == 2

    def test_named_fork_with_decls(self):
        stmt = parse_stmt("fork : f integer i; i = 1; join")
        assert stmt.name == "f"
        assert stmt.decls[0].kind == "integer"

    def test_force_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            parse_stmt("force x = 1;")

    def test_intra_assign_nonblocking_lhs_not_comparison(self):
        # `a <= b` as a statement must parse as non-blocking assign
        stmt = parse_stmt("a <= b;")
        assert isinstance(stmt, ast.NonBlockingAssign)


class TestExpressions:
    def test_precedence(self):
        expr = parse_expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_power_right_assoc(self):
        expr = parse_expr("a ** b ** c")
        assert expr.op == "**"
        assert expr.right.op == "**"

    def test_ternary(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.else_value, ast.Ternary)

    def test_unary_chain(self):
        expr = parse_expr("~|a")
        assert expr.op == "~|"
        expr = parse_expr("!!a")
        assert expr.op == "!" and expr.operand.op == "!"

    def test_concat_and_replication(self):
        expr = parse_expr("{a, b, 2'b01}")
        assert isinstance(expr, ast.Concat)
        assert len(expr.parts) == 3
        expr = parse_expr("{4{a}}")
        assert isinstance(expr, ast.Repl)
        expr = parse_expr("{2{a, b}}")
        assert isinstance(expr, ast.Repl)
        assert isinstance(expr.value, ast.Concat)

    def test_selects(self):
        expr = parse_expr("mem[3]")
        assert isinstance(expr, ast.Index)
        expr = parse_expr("v[7:4]")
        assert isinstance(expr, ast.PartSelect)
        expr = parse_expr("mem[i][3]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_hierarchical_identifier(self):
        expr = parse_expr("top.u1.sig")
        assert expr.parts == ("top", "u1", "sig")

    def test_function_call_expr(self):
        expr = parse_expr("f(a, b + 1)")
        assert isinstance(expr, ast.FunctionCall)
        assert len(expr.args) == 2

    def test_system_function_expr(self):
        expr = parse_expr("$random")
        assert isinstance(expr, ast.SystemCall)
        expr = parse_expr("$signed(x)")
        assert expr.name == "$signed"

    def test_indexed_part_select_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            parse_expr("v[3 +: 2]")


class TestNumbers:
    def number(self, text):
        return parse_expr(text)

    def test_plain_decimal(self):
        n = self.number("42")
        assert n.width == 32 and n.signed
        assert int(n.bits, 2) == 42

    def test_sized_hex(self):
        n = self.number("8'hFF")
        assert n.width == 8 and not n.signed
        assert n.bits == "11111111"

    def test_sized_truncation(self):
        assert self.number("4'hFF").bits == "1111"

    def test_x_extension(self):
        n = self.number("8'bx1")
        assert n.bits == "xxxxxxx1"

    def test_zero_extension(self):
        assert self.number("8'b11").bits == "00000011"

    def test_signed_literal(self):
        assert self.number("4'sb1111").signed

    def test_question_mark_is_z(self):
        assert self.number("4'b1?1?").bits == "1z1z"

    def test_octal(self):
        assert self.number("6'o17").bits == "001111"

    def test_based_unsized(self):
        n = self.number("'hF")
        assert n.width == 32
