"""Additional CLI coverage: flag combinations and error surfaces."""

import pytest

from repro.cli import build_arg_parser, main


@pytest.fixture
def counter_file(tmp_path):
    path = tmp_path / "counter.v"
    path.write_text("""
        module tb; reg clk; reg [3:0] q;
          initial begin
            clk = 0; q = 0;
            repeat (6) begin
              #5 clk = ~clk;
              if (clk) q = q + 1;
            end
            $display("q=%0d", q);
            $finish;
          end
        endmodule
    """)
    return str(path)


class TestFlags:
    def test_echo_by_default(self, counter_file, capsys):
        assert main([counter_file]) == 0
        out = capsys.readouterr().out
        assert "q=3" in out
        assert "$finish" in out

    def test_quiet_suppresses_display(self, counter_file, capsys):
        main([counter_file, "--quiet"])
        assert "q=3" not in capsys.readouterr().out

    def test_top_selection(self, tmp_path, capsys):
        path = tmp_path / "two.v"
        path.write_text("""
            module a; initial $display("in a"); endmodule
            module b; initial $display("in b"); endmodule
        """)
        main([str(path), "--top", "b"])
        out = capsys.readouterr().out
        assert "in b" in out and "in a" not in out

    def test_missing_top_is_error(self, tmp_path, capsys):
        path = tmp_path / "two.v"
        path.write_text("""
            module a; endmodule
            module b; endmodule
        """)
        assert main([str(path)]) == 2

    def test_multiple_defines(self, tmp_path, capsys):
        path = tmp_path / "d.v"
        path.write_text("""
            module tb;
              initial $display("%0d %0d", `A, `B);
            endmodule
        """)
        assert main([str(path), "--define", "A=3", "--define", "B=4"]) == 0
        assert "3 4" in capsys.readouterr().out

    def test_continue_on_violation(self, tmp_path, capsys):
        path = tmp_path / "v.v"
        path.write_text("""
            module tb; reg [1:0] a;
              initial begin
                a = $random;
                if (a == 1) $error("first");
                if (a == 2) $error("second");
              end
            endmodule
        """)
        assert main([str(path), "--quiet",
                     "--continue-on-violation"]) == 1
        out = capsys.readouterr().out
        assert "first" in out and "second" in out

    def test_nonexistent_file(self, capsys):
        assert main(["/nonexistent/file.v"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_parser_help_lists_modes(self):
        parser = build_arg_parser()
        text = parser.format_help()
        for mode in ("full", "queue_merge_only", "none"):
            assert mode in text
