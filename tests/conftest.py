"""Shared pytest fixtures and helpers."""

from __future__ import annotations

import pytest

import repro
from repro import SimOptions
from repro.bdd import BddManager


@pytest.fixture
def mgr() -> BddManager:
    return BddManager()


def run_source(source: str, top=None, until=None, **option_kwargs):
    """Compile and run Verilog source; return (SimResult, simulator)."""
    options = SimOptions(**option_kwargs) if option_kwargs else None
    sim = repro.open_sim(source, top=top, options=options)
    result = sim.run(until=until)
    return result, sim


def run_value(source: str, net: str, top=None, until=None, **option_kwargs):
    """Run source and return a net's final value as a bit string."""
    result, sim = run_source(source, top=top, until=until, **option_kwargs)
    return sim.value(net).to_verilog_bits()
