"""Durable batch execution end to end: chaos worker kills with exact
blast radius, retry/backoff/quarantine, lease-timeout escalation, the
BATCHJRNL/1 journal + resume, checkpoint-healed retries, retry
determinism for mutation campaigns, and the extended CLI exit codes."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.batch import (
    JOURNAL_NAME, RetryPolicy, RunRequest, read_journal, run_batch,
)
from repro.batch.worker import CHAOS_KILL_ENV
from repro.errors import BatchError, QuarantinedRunError
from repro.guard import Fault, FaultInjector
from repro.obs.live import SCHEMA, assess_lease, write_status
from repro.sim import SimOptions

COUNTER = """
module tb;
  reg clk; reg [3:0] d; reg [7:0] acc;
  initial clk = 0;
  always #5 clk = !clk;
  initial begin
    acc = 0;
    repeat (4) begin
      @(posedge clk) d = $random;
      acc = acc + d;
    end
    #1 $finish;
  end
endmodule
"""

WEDGE = """
module tb;
  reg x;
  initial begin
    x = 0;
    while (1) x = !x;
  end
endmodule
"""

FAST = RetryPolicy(backoff_base=0.01)


def _requests(count, prefix="r", **option_kwargs):
    return [RunRequest(name=f"{prefix}{index}", source=COUNTER,
                       options=SimOptions(**option_kwargs))
            for index in range(count)]


# ---------------------------------------------------------------------------
# chaos: worker kills with exact blast radius


class TestWorkerLoss:
    def test_killed_worker_costs_exactly_one_retry(self, tmp_path,
                                                   monkeypatch):
        """``kill -9`` of one worker = one retried run, zero spurious
        failures on every other run (the PPE engine poisoned the whole
        pending set here)."""
        monkeypatch.setenv(CHAOS_KILL_ENV, "r1:1")
        result = run_batch(_requests(5), workers=2,
                           out_dir=str(tmp_path / "out"),
                           trace=False, retry=FAST)
        assert result.ok
        victim = result["r1"]
        assert victim.attempts == 2
        assert len(victim.failure_history) == 1
        assert victim.failure_history[0]["kind"] == "worker-lost"
        assert "died" in victim.failure_history[0]["error"]
        # blast radius: every other run finished on its first attempt
        assert all(result[f"r{i}"].attempts == 1 for i in (0, 2, 3, 4))
        assert result.retries == 1 and result.requeued == 1
        assert result.quarantined_runs == []

    def test_poison_run_is_quarantined_with_history(self, tmp_path,
                                                    monkeypatch):
        """A run that kills every worker that touches it is terminal
        after max_attempts, with the full attempt history, and the
        rest of the batch is unharmed."""
        monkeypatch.setenv(CHAOS_KILL_ENV, "r1")  # every attempt
        result = run_batch(
            _requests(4), workers=2, out_dir=str(tmp_path / "out"),
            trace=False,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01))
        poison = result["r1"]
        assert poison.quarantined
        assert poison.status.value == "aborted"
        assert poison.attempts == 3
        assert [h["kind"] for h in poison.failure_history] == \
            ["worker-lost"] * 3
        assert [h["attempt"] for h in poison.failure_history] == [1, 2, 3]
        assert "quarantined after 3 attempt(s)" in poison.error
        assert result.quarantined_runs == ["r1"]
        assert all(result[f"r{i}"].ok and result[f"r{i}"].attempts == 1
                   for i in (0, 2, 3))
        with pytest.raises(QuarantinedRunError) as err:
            result.check_quarantine()
        assert err.value.name == "r1"
        assert err.value.attempts == 3
        assert len(err.value.failure_history) == 3
        # the journal recorded every attempt and the quarantine verdict
        state = read_journal(os.path.join(str(tmp_path / "out"),
                                          JOURNAL_NAME))
        events = [r["event"] for r in state.attempts["r1"]]
        assert events.count("start") == 3
        assert events[-1] == "quarantine"
        assert state.terminal["r1"]["quarantined"] is True

    def test_batch_metrics_count_durability_events(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, "r0:1")
        result = run_batch(_requests(2), workers=1,
                           out_dir=str(tmp_path / "out"),
                           trace=False, retry=FAST)
        rows = {}
        for entry in result.metrics.snapshot()["metrics"]:
            key = entry["name"]
            if entry["labels"]:
                key += str(sorted(entry["labels"].items()))
            rows[key] = entry["value"]
        assert rows["batch.retries"] == 1
        assert rows["batch.requeued"] == 1
        assert rows["batch.quarantined"] == 0
        assert rows["batch.attempts[('run', 'r0')]"] == 2
        assert rows["batch.attempts[('run', 'r1')]"] == 1


# ---------------------------------------------------------------------------
# retrying run statuses is opt-in


class TestRetryStatuses:
    def _flaky(self, name="flaky"):
        """Aborts on attempt 1 (injected safe-point fault), clean after."""
        return RunRequest(name=name, source=COUNTER, options=SimOptions(
            faults=FaultInjector([
                Fault("safe-point-error", at_step=2, on_attempt=1)])))

    def test_default_policy_does_not_retry_aborts(self, tmp_path):
        result = run_batch([self._flaky()], workers=1,
                           out_dir=str(tmp_path / "out"), trace=False)
        outcome = result["flaky"]
        assert outcome.status.value == "aborted"
        assert outcome.attempts == 1
        assert not outcome.quarantined

    def test_opted_in_statuses_retry_and_heal(self, tmp_path):
        clean_dir = str(tmp_path / "clean")
        clean = run_batch(
            [RunRequest(name="flaky", source=COUNTER)], workers=1,
            out_dir=clean_dir, trace=False)
        result = run_batch(
            [self._flaky()], workers=1, out_dir=str(tmp_path / "out"),
            trace=False,
            retry=RetryPolicy(retry_statuses={"aborted"},
                              backoff_base=0.01))
        outcome = result["flaky"]
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.failure_history[0]["kind"] == "status"
        assert "injected safe-point fault" in \
            outcome.failure_history[0]["error"]
        # the healed result is the clean run's result, exactly
        assert outcome.result == clean["flaky"].result

    def test_retry_resumes_from_rolling_checkpoint(self, tmp_path):
        request = RunRequest(name="ckpt", source=COUNTER, options=SimOptions(
            checkpoint_every=3,
            faults=FaultInjector([
                Fault("safe-point-error", at_step=7, on_attempt=1)])))
        clean = run_batch(
            [RunRequest(name="ckpt", source=COUNTER)], workers=1,
            out_dir=str(tmp_path / "clean"), trace=False)
        result = run_batch(
            [request], workers=1, out_dir=str(tmp_path / "out"),
            trace=False,
            retry=RetryPolicy(retry_statuses={"aborted"},
                              backoff_base=0.01))
        outcome = result["ckpt"]
        assert outcome.ok and outcome.attempts == 2
        assert outcome.resumed_from_checkpoint
        reference = clean["ckpt"].result
        # checkpoint resume is bit-identical: same end state as a run
        # that never failed
        assert outcome.result["time"] == reference["time"]
        assert outcome.result["output"] == reference["output"]
        assert outcome.result["metrics"]["events_processed"] == \
            reference["metrics"]["events_processed"]


# ---------------------------------------------------------------------------
# stall watching + lease escalation


class TestStallsAndLeases:
    def test_stall_watcher_not_starved_by_steady_completions(
            self, tmp_path):
        """Regression: the old engine polled for stalls only in wait
        windows with zero completions, so a steady trickle of fast
        finishes starved detection forever.  Every scheduling iteration
        must check."""
        out = str(tmp_path / "out")
        names = [f"r{i}" for i in range(12)]
        # the last-dispatched run looks anciently wedged from the start
        write_status(os.path.join(out, "status", names[-1] + ".json"),
                     {"schema": SCHEMA, "name": names[-1],
                      "status": "running", "ts_unix": time.time() - 300.0})
        result = run_batch(
            [RunRequest(name=n, source=COUNTER) for n in names],
            workers=1, out_dir=out, trace=False,
            heartbeat_every=10_000_000, stall_after=0.05)
        # on one worker every wait window completes a run, yet the
        # stalled run is still flagged (and still finishes fine)
        assert names[-1] in result.stalled_runs
        assert result.ok

    def test_lease_timeout_kills_and_quarantines_wedged_run(
            self, tmp_path):
        """stall -> kill -> requeue: a genuinely wedged run burns its
        attempts and is quarantined; the healthy run is untouched."""
        requests = [
            RunRequest(name="good", source=COUNTER),
            RunRequest(name="wedge", source=WEDGE),
        ]
        start = time.perf_counter()
        result = run_batch(
            requests, workers=2, out_dir=str(tmp_path / "out"),
            trace=False,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01,
                              lease_timeout=0.75))
        assert time.perf_counter() - start < 30.0
        assert result["good"].ok and result["good"].attempts == 1
        wedge = result["wedge"]
        assert wedge.quarantined and wedge.attempts == 2
        assert [h["kind"] for h in wedge.failure_history] == \
            ["stall-kill", "stall-kill"]
        assert "lease expired" in wedge.failure_history[0]["error"]
        assert result.quarantined_runs == ["wedge"]

    def test_assess_lease_verdicts(self):
        now = 1000.0
        fresh = {"status": "running", "ts_unix": now - 1.0}
        stale = {"status": "running", "ts_unix": now - 120.0}
        # fresh heartbeat from this lease keeps it alive past the limit
        health = assess_lease("r", 1, lease_age=90.0, record=fresh,
                              kill_after=30.0, now_unix=now,
                              started_unix=now - 90.0)
        assert not health.expired and health.heartbeat_age == 1.0
        # stale heartbeat + old lease -> expired
        assert assess_lease("r", 1, lease_age=90.0, record=stale,
                            kill_after=30.0, now_unix=now,
                            started_unix=now - 90.0).expired
        # a record from a *previous attempt* does not vouch for this one
        previous = {"status": "running", "ts_unix": now - 50.0}
        assert assess_lease("r", 1, lease_age=40.0, record=previous,
                            kill_after=30.0, now_unix=now,
                            started_unix=now - 40.0).expired
        # young lease is never expired, even with no record at all
        assert not assess_lease("r", 1, lease_age=5.0, record=None,
                                kill_after=30.0, now_unix=now).expired
        # old lease with heartbeats disabled expires on age alone
        assert assess_lease("r", 1, lease_age=31.0, record=None,
                            kill_after=30.0, now_unix=now).expired
        # a terminal record is not evidence of progress
        done = {"status": "ok", "ts_unix": now - 1.0}
        assert assess_lease("r", 1, lease_age=31.0, record=done,
                            kill_after=30.0, now_unix=now,
                            started_unix=now - 31.0).expired


# ---------------------------------------------------------------------------
# journal + resume


class TestResume:
    def _vcd_requests(self):
        return [RunRequest(name=f"run{i}", source=COUNTER, vcd=True,
                           options=SimOptions(concrete_random=i))
                for i in range(3)]

    def _collect(self, result, out):
        payload = {}
        for outcome in result:
            vcd = open(os.path.join(out, "runs", outcome.name,
                                    "wave.vcd"), "rb").read()
            payload[outcome.name] = (outcome.result, vcd)
        return payload

    def test_interrupted_batch_resumes_byte_identical(self, tmp_path):
        """Kill the controller mid-batch; resume re-executes only the
        journal's non-terminal runs and the final artifacts are byte
        identical to an uninterrupted batch."""
        ref_dir = str(tmp_path / "ref")
        reference = run_batch(self._vcd_requests(), workers=1,
                              out_dir=ref_dir, trace=False)

        out = str(tmp_path / "out")
        seen = []

        def die_after_first(outcome):
            seen.append(outcome.name)
            raise KeyboardInterrupt  # the controller "crashes"

        with pytest.raises(KeyboardInterrupt):
            run_batch(self._vcd_requests(), workers=1, out_dir=out,
                      trace=False, on_result=die_after_first)
        assert len(seen) == 1

        state = read_journal(os.path.join(out, JOURNAL_NAME))
        assert set(state.terminal) == set(seen)

        resumed = run_batch(self._vcd_requests(), workers=1, out_dir=out,
                            trace=False, resume=True)
        assert resumed.ok
        assert resumed.resumed_runs == seen
        assert resumed[seen[0]].resumed
        # only the non-terminal runs re-executed: one start record each
        # before the resume marker, journaled completions after
        state = read_journal(os.path.join(out, JOURNAL_NAME))
        starts = {name: [r for r in records if r["event"] == "start"]
                  for name, records in state.attempts.items()}
        assert len(starts[seen[0]]) == 1  # not re-run by the resume
        # final payloads == the uninterrupted batch, byte for byte
        assert self._collect(resumed, out) == \
            self._collect(reference, ref_dir)

    def test_resume_of_finished_batch_restores_everything(self, tmp_path):
        out = str(tmp_path / "out")
        first = run_batch(self._vcd_requests(), workers=2, out_dir=out,
                          trace=False)
        again = run_batch(self._vcd_requests(), workers=2, out_dir=out,
                          trace=False, resume=True)
        assert sorted(again.resumed_runs) == ["run0", "run1", "run2"]
        assert all(outcome.resumed for outcome in again)
        assert [o.result for o in again] == [o.result for o in first]

    def test_resume_refuses_edited_requests(self, tmp_path):
        out = str(tmp_path / "out")
        run_batch(self._vcd_requests(), workers=1, out_dir=out,
                  trace=False)
        edited = [r if r.name != "run1"
                  else RunRequest(name="run1", source=COUNTER, vcd=True,
                                  options=SimOptions(concrete_random=1),
                                  until=7)
                  for r in self._vcd_requests()]
        with pytest.raises(BatchError, match="fingerprint changed"):
            run_batch(edited, workers=1, out_dir=out, trace=False,
                      resume=True)

    def test_resume_requires_journal_and_out_dir(self, tmp_path):
        with pytest.raises(BatchError, match="journal"):
            run_batch(self._vcd_requests(), resume=True,
                      out_dir=str(tmp_path / "x"), journal=False)
        with pytest.raises(BatchError, match="out_dir"):
            run_batch(self._vcd_requests(), resume=True)

    def test_journal_false_writes_nothing(self, tmp_path):
        out = str(tmp_path / "out")
        result = run_batch(_requests(1), workers=1, out_dir=out,
                           trace=False, journal=False)
        assert result.journal_path is None
        assert not os.path.exists(os.path.join(out, JOURNAL_NAME))


# ---------------------------------------------------------------------------
# campaigns inherit retry semantics deterministically


class TestCampaignRetries:
    DESIGN = """
module dut(a, b, s);
  input [3:0] a, b;
  output [4:0] s;
  assign s = {1'b0, a} + {1'b0, b};
endmodule

module tb;
  reg [3:0] a, b;
  wire [4:0] s;
  dut u(.a(a), .b(b), .s(s));
  initial begin
    a = $random;
    b = $random;
    #1 $assert(s == ({1'b0, a} + {1'b0, b}));
    #1 $finish;
  end
endmodule
"""

    def _config(self, transient_faults):
        from repro.mutate import CampaignConfig

        options = SimOptions()
        if transient_faults:
            options = SimOptions(faults=FaultInjector([
                Fault("safe-point-error", at_step=1, on_attempt=1)]))
        return CampaignConfig(source=self.DESIGN, until=10, seed=3,
                              options=options)

    def test_transient_faults_with_retries_cannot_skew_the_report(
            self, tmp_path):
        """Every run (baseline included) aborts on its first attempt
        and heals on retry; the report must be byte-identical across
        pool widths AND to a campaign that never failed at all."""
        from repro.mutate import run_campaign

        policy = RetryPolicy(retry_statuses={"aborted"}, backoff_base=0.01)
        clean = run_campaign(self._config(False), workers=1,
                             out_dir=str(tmp_path / "clean"))
        narrow = run_campaign(self._config(True), workers=1,
                              out_dir=str(tmp_path / "w1"), retry=policy)
        wide = run_campaign(self._config(True), workers=4,
                            out_dir=str(tmp_path / "w4"), retry=policy)
        assert narrow.to_json() == wide.to_json()
        # the retried campaign's classifications equal the clean one's
        # (plan/fingerprint fields differ only via... nothing: faults
        # are not part of the mutated source, so the whole report
        # matches)
        assert narrow.to_json() == clean.to_json()
        # and the retries really happened
        assert narrow.batch.retries == len(narrow.batch.outcomes)

    def test_quarantined_mutant_classifies_as_aborted(self, tmp_path,
                                                      monkeypatch):
        from repro.mutate import run_campaign

        report = run_campaign(self._config(False), workers=1,
                              out_dir=str(tmp_path / "out"))
        victim = report.mutants[0].id
        monkeypatch.setenv(CHAOS_KILL_ENV, victim)
        retried = run_campaign(
            self._config(False), workers=2,
            out_dir=str(tmp_path / "chaos"),
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01))
        row = {m.id: m for m in retried.mutants}[victim]
        assert row.classification == "aborted"
        assert retried.batch[victim].quarantined


# ---------------------------------------------------------------------------
# CLI: exit codes, resume, retry flags


def _write_manifest(tmp_path, runs, name="jobs.json", extra=None):
    document = {"runs": runs}
    if extra:
        document.update(extra)
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


class TestCli:
    def test_quarantine_exits_5(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        manifest = _write_manifest(tmp_path, [
            {"name": "a", "source": COUNTER},
            {"name": "b", "source": COUNTER},
        ])
        monkeypatch.setenv(CHAOS_KILL_ENV, "b")
        code = main(["batch", manifest, "--quiet", "--no-trace",
                     "--max-attempts", "2", "--backoff-base", "0.01",
                     "--out-dir", str(tmp_path / "out")])
        captured = capsys.readouterr()
        assert code == 5
        assert "quarantined: b" in captured.err
        assert "[quarantined]" in captured.out

    def test_resume_flow_and_mismatch_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        manifest = _write_manifest(tmp_path, [
            {"name": "a", "source": COUNTER},
        ])
        out = str(tmp_path / "out")
        assert main(["batch", manifest, "--quiet", "--no-trace",
                     "--out-dir", out]) == 0
        # resume of the finished batch restores and exits clean
        assert main(["batch", manifest, "--quiet", "--no-trace",
                     "--resume", out]) == 0
        assert "restored from the journal" in capsys.readouterr().out
        # an edited manifest is refused with a single-line error, exit 2
        edited = _write_manifest(tmp_path, [
            {"name": "a", "source": COUNTER, "until": 7},
        ], name="edited.json")
        assert main(["batch", edited, "--quiet", "--no-trace",
                     "--resume", out]) == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:") and "\n" not in err
        assert "fingerprint changed" in err

    def test_resume_flag_conflicts(self, tmp_path, capsys):
        from repro.cli import main

        manifest = _write_manifest(tmp_path, [
            {"name": "a", "source": COUNTER},
        ])
        assert main(["batch", manifest, "--resume", str(tmp_path / "o"),
                     "--out-dir", str(tmp_path / "other")]) == 2
        assert main(["batch", manifest, "--resume", str(tmp_path / "o"),
                     "--no-journal"]) == 2
        capsys.readouterr()

    def test_manifest_retry_object_drives_policy(self, tmp_path, capsys,
                                                 monkeypatch):
        from repro.batch import load_policy
        from repro.cli import main

        manifest = _write_manifest(
            tmp_path, [{"name": "a", "source": COUNTER}],
            extra={"retry": {"max_attempts": 2, "backoff_base": 0.01,
                             "seed": 9}})
        policy = load_policy(manifest)
        assert policy.max_attempts == 2 and policy.seed == 9
        # no "retry" object -> None (engine default applies)
        plain = _write_manifest(
            tmp_path, [{"name": "a", "source": COUNTER}],
            name="plain.json")
        assert load_policy(plain) is None
        # unknown keys are rejected loudly
        bad = _write_manifest(
            tmp_path, [{"name": "a", "source": COUNTER}],
            name="bad.json", extra={"retry": {"max_retries": 3}})
        with pytest.raises(BatchError, match="unknown retry keys"):
            load_policy(bad)
        assert main(["batch", bad, "--quiet", "--no-trace",
                     "--out-dir", str(tmp_path / "o")]) == 2
        capsys.readouterr()
