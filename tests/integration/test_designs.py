"""Sanity tests on the four benchmark designs."""

import pytest

import repro
from repro import AccumulationMode, SimOptions
from repro.designs import load


def run_design(name, until=None, options=None, **kwargs):
    src, top, defines = load(name, **kwargs)
    sim = repro.open_sim(src, top=top, options=options,
                                              defines=defines)
    return sim.run(until=until), sim


class TestLoader:
    def test_all_designs_load(self):
        for name in ("gcd", "dram", "risc8", "mcu8"):
            src, top, defines = load(name)
            assert "module" in src
            assert top.endswith("_tb")

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            load("nothere")


class TestDram:
    def test_symbolic_readback_correct(self):
        result, _ = run_design("dram", bursts=1, until=2000)
        assert result.finished
        assert not result.violations

    def test_modes_equal_events(self):
        """The paper's DRAM row: accumulation level does not matter."""
        counts = {}
        for mode in AccumulationMode:
            result, _ = run_design(
                "dram", bursts=1, until=2000,
                options=SimOptions(accumulation=mode))
            counts[mode] = result.stats.events_processed
        assert len(set(counts.values())) == 1


class TestGcd:
    def test_matches_reference_model(self):
        result, _ = run_design("gcd", rounds=1, until=2000)
        assert result.finished
        assert not result.violations

    def test_two_rounds(self):
        result, _ = run_design("gcd", rounds=2, until=5000)
        assert result.finished
        assert not result.violations

    def test_accumulation_required_for_speed(self):
        full, _ = run_design("gcd", rounds=1, until=2000,
                             options=SimOptions(
                                 accumulation=AccumulationMode.FULL))
        none, _ = run_design("gcd", rounds=1, until=2000,
                             options=SimOptions(
                                 accumulation=AccumulationMode.NONE))
        assert none.stats.events_processed > full.stats.events_processed


class TestRisc8:
    def test_golden_model_matches(self):
        result, _ = run_design("risc8", runtime=150, until=300)
        assert result.finished
        assert not result.violations

    def test_symbols_per_cycle(self):
        result, _ = run_design("risc8", runtime=100, until=300)
        # one 8-bit injection per cycle
        assert result.stats.symbols_injected % 8 == 0
        assert result.stats.symbols_injected >= 8 * 8


class TestMcu8:
    def test_bug_found_symbolically(self):
        result, sim = run_design("mcu8", runtime=100, until=200)
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.kind == "$assert"
        # the shortest trigger: EI at cycle 1, SETB C at 2, ADDC at 3,
        # interrupt during its operand at cycle 4 -> caught at t=47
        assert violation.time <= 60

    def test_trace_contains_trigger_sequence(self):
        result, sim = run_design("mcu8", runtime=100, until=200)
        trace = result.violations[0].trace
        code_values = [e.value for e in trace.entries
                       if e.executed and len(e.value) == 8]
        # EI (0xB1-pattern: 1011???1), SETB C (1010???1), ADDC (0011????)
        assert any(v[:4] == "1011" and v[7] == "1" for v in code_values)
        assert any(v[:4] == "1010" and v[7] == "1" for v in code_values)
        assert any(v[:4] == "0011" for v in code_values)

    def test_bug_resimulates_concretely(self):
        result, sim = run_design("mcu8", runtime=100, until=200)
        concrete = sim.resimulate(result.violations[0], until=200)
        assert concrete.violations
        assert concrete.violations[0].time == result.violations[0].time

    def test_quiet_phase_delays_bug(self):
        result, _ = run_design("mcu8", runtime=150, quiet=3, period=1,
                               until=300)
        assert result.violations
        assert result.violations[0].time > 47

    def test_random_baseline_misses_bug(self):
        src, top, defines = load("mcu8", runtime=400)
        for seed in (7, 42):
            sim = repro.open_sim(
                src, top=top, defines=defines,
                options=SimOptions(concrete_random=seed))
            result = sim.run(until=500)
            assert not result.violations
