"""Event control, sensitivity lists, waits and named events."""

import pytest

from repro.errors import SimulationHang, SymbolicDelayError
from tests.conftest import run_source


class TestEdgeControl:
    def test_posedge_negedge(self):
        result, _ = run_source("""
            module tb; reg clk; reg [3:0] ups, downs;
              initial begin
                clk = 0; ups = 0; downs = 0;
                repeat (6) #5 clk = ~clk;
                #1;  // let the last edge's waiters run
                if (ups !== 3 || downs !== 3) $error;
              end
              always @(posedge clk) ups = ups + 1;
              always @(negedge clk) downs = downs + 1;
            endmodule
        """)
        assert not result.violations

    def test_x_transitions_are_edges(self):
        # 0 -> x is a posedge per 1364
        result, _ = run_source("""
            module tb; reg s; reg [3:0] edges;
              initial begin
                edges = 0;
                s = 0;
                #1 s = 1'bx;
                #1 s = 1;
                #1;
                if (edges !== 2) $error;  // 0->x and x->1
              end
              always @(posedge s) edges = edges + 1;
            endmodule
        """)
        assert not result.violations

    def test_or_list_sensitivity(self):
        result, _ = run_source("""
            module tb; reg a, b; reg [3:0] hits;
              initial begin
                hits = 0;
                a = 0; b = 0;
                #1 a = 1;
                #1 b = 1;
                #1;
                if (hits !== 2) $error;
              end
              always @(a or b) hits = hits + 1;
            endmodule
        """)
        assert not result.violations

    def test_mixed_edge_and_level(self):
        result, _ = run_source("""
            module tb; reg clk, d; reg [3:0] hits;
              initial begin
                hits = 0; clk = 0; d = 0;
                #1 d = 1;        // level change fires
                #1 clk = 1;      // posedge fires
                #1 clk = 0;      // negedge of clk: no posedge, no d change
                #1;
                if (hits !== 2) $error;
              end
              always @(posedge clk or d) hits = hits + 1;
            endmodule
        """)
        assert not result.violations

    def test_at_star_combinational(self):
        result, _ = run_source("""
            module tb; reg [3:0] a, b; reg [3:0] y;
              initial begin
                // note: assignments happen *after* the @* block has
                // registered its sensitivity (t=0 would race, exactly
                // like the classic always-@*-at-time-zero gotcha)
                #1 a = 1; b = 2;
                #1 if (y !== 3) $error;
                a = 7;
                #1 if (y !== 9) $error;
              end
              always @* y = a + b;
            endmodule
        """)
        assert not result.violations

    def test_vector_change_any_bit(self):
        result, _ = run_source("""
            module tb; reg [7:0] v; reg [3:0] hits;
              initial begin
                hits = 0;
                v = 0;
                #1 v = 8'h01;
                #1 v = 8'h01;  // no change
                #1 v = 8'h81;
                #1;
                if (hits !== 2) $error;
              end
              always @(v) hits = hits + 1;
            endmodule
        """)
        assert not result.violations

    def test_edge_on_lsb_of_vector(self):
        # Edge controls apply to bit 0 of a vector expression.
        result, _ = run_source("""
            module tb; reg [3:0] v; reg [3:0] hits;
              initial begin
                hits = 0; v = 4'b0000;
                #1 v = 4'b0010;   // bit0 unchanged -> no posedge
                #1 v = 4'b0011;   // bit0 0->1 posedge
                #1;
                if (hits !== 1) $error;
              end
              always @(posedge v) hits = hits + 1;
            endmodule
        """)
        assert not result.violations


class TestNamedEvents:
    def test_trigger_wakes_waiter(self):
        result, _ = run_source("""
            module tb; event go; reg [3:0] woke;
              initial begin
                woke = 0;
                #3 -> go;
                #1 if (woke !== 1) $error;
                #3 -> go;
                #1 if (woke !== 2) $error;
              end
              always @(go) woke = woke + 1;
            endmodule
        """)
        assert not result.violations


class TestWait:
    def test_wait_already_true_proceeds(self):
        result, _ = run_source("""
            module tb; reg flag;
              initial begin
                flag = 1;
                wait (flag) ;
                if ($time !== 0) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_wait_blocks_until_true(self):
        result, _ = run_source("""
            module tb; reg flag;
              initial begin
                flag = 0;
                #7 flag = 1;
              end
              initial begin
                wait (flag);
                if ($time !== 7) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_wait_on_expression(self):
        result, _ = run_source("""
            module tb; reg [3:0] n;
              initial begin
                n = 0;
                repeat (9) #1 n = n + 1;
              end
              initial begin
                wait (n > 4);
                if ($time !== 5) $error;
              end
            endmodule
        """)
        assert not result.violations


class TestPathologies:
    def test_zero_delay_loop_hangs_detected(self):
        with pytest.raises(SimulationHang):
            run_source("""
                module tb; reg x;
                  initial begin
                    x = 0;
                    while (1) x = ~x;
                  end
                endmodule
            """, max_step_activity=1000)

    def test_symbolic_delay_rejected(self):
        with pytest.raises(SymbolicDelayError):
            run_source("""
                module tb; reg [3:0] d;
                  initial begin
                    d = $random;
                    #d $display("nope");
                  end
                endmodule
            """)

    def test_continue_run_after_until(self):
        import repro

        sim = repro.open_sim("""
            module tb; reg [7:0] n;
              initial begin
                n = 0;
                repeat (10) #10 n = n + 1;
              end
            endmodule
        """)
        first = sim.run(until=35)
        assert sim.value("n").to_int() == 3
        second = sim.run(until=100)
        assert sim.value("n").to_int() == 10
        assert second.time > first.time
