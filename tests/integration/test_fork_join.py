"""fork/join: parallel branches with a completion barrier.

The compilation scheme generalizes the paper's Fig. 2 else-branch
trick: sibling branches are launched as zero-delay events, and a
barrier instruction proceeds only on the path regions where *every*
branch has completed (per-branch completion masks as BDDs).
"""

import itertools

import pytest

from tests.conftest import run_source


class TestConcreteForkJoin:
    def test_barrier_waits_for_slowest(self):
        result, _ = run_source("""
            module tb; reg [3:0] a, b, c;
              initial begin
                fork
                  #3 a = 1;
                  #7 b = 2;
                  #5 c = 3;
                join
                if ($time !== 7) $error;
                if (a !== 1 || b !== 2 || c !== 3) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_branches_share_time_zero(self):
        result, _ = run_source("""
            module tb; reg [3:0] t1, t2;
              initial begin
                #5;
                fork
                  t1 = $time;
                  t2 = $time;
                join
                if (t1 !== 5 || t2 !== 5) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_empty_fork(self):
        result, _ = run_source("""
            module tb;
              initial begin
                fork
                join
                if ($time !== 0) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_single_branch(self):
        result, _ = run_source("""
            module tb;
              initial begin
                fork
                  #4;
                join
                if ($time !== 4) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_fork_in_loop_reactivates(self):
        result, _ = run_source("""
            module tb; integer k; reg [7:0] n;
              initial begin
                n = 0;
                for (k = 0; k < 3; k = k + 1) begin
                  fork
                    #1 n = n + 1;
                    #2 n = n + 1;
                  join
                end
                if (n !== 6) $error;
                if ($time !== 6) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_nested_fork(self):
        result, _ = run_source("""
            module tb;
              initial begin
                fork
                  begin
                    fork
                      #1;
                      #3;
                    join
                    if ($time !== 3) $error;
                  end
                  #2;
                join
                if ($time !== 3) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_fork_with_event_controls(self):
        result, _ = run_source("""
            module tb; reg go; reg [3:0] woke;
              initial begin
                go = 0;
                fork
                  begin @(posedge go) woke = $time; end
                  #6 go = 1;
                join
                if (woke !== 6) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_producer_consumer_in_fork(self):
        result, _ = run_source("""
            module tb; reg [7:0] queue [0:3]; reg [2:0] wp, rp;
              reg [7:0] total;
              initial begin
                wp = 0; rp = 0; total = 0;
                fork
                  begin : producer
                    repeat (4) begin
                      #2 queue[wp[1:0]] = wp + 10;
                      wp = wp + 1;
                    end
                  end
                  begin : consumer
                    repeat (4) begin
                      wait (rp != wp);
                      total = total + queue[rp[1:0]];
                      rp = rp + 1;
                    end
                  end
                join
                if (total !== 10 + 11 + 12 + 13) $error;
              end
            endmodule
        """)
        assert not result.violations


class TestSymbolicForkJoin:
    def test_symbolic_branch_latency(self):
        result, sim = run_source("""
            module tb; reg s; reg [7:0] t_end;
              initial begin
                s = $random;
                fork
                  begin if (s) #2; else #6; end
                  #4;
                join
                t_end = $time;
              end
            endmodule
        """)
        t_end = sim.value("t_end")
        assert t_end.substitute({0: True}).to_int() == 4   # max(2, 4)
        assert t_end.substitute({0: False}).to_int() == 6  # max(6, 4)

    def test_both_branches_see_symbolic_data(self):
        result, sim = run_source("""
            module tb; reg [1:0] v; reg [3:0] x, y;
              initial begin
                v = $random;
                fork
                  x = v + 1;
                  y = v + 2;
                join
              end
            endmodule
        """)
        for bits in itertools.product([False, True], repeat=2):
            cube = dict(enumerate(bits))
            v = sum(1 << i for i, b in enumerate(bits) if b)
            assert sim.value("x").substitute(cube).to_int() == (v + 1) % 16
            assert sim.value("y").substitute(cube).to_int() == (v + 2) % 16

    def test_join_merges_balanced_paths(self):
        # after the join, the region code runs once per path (controls
        # recombined by the barrier + accumulation)
        result, sim = run_source("""
            module tb; reg s; reg [7:0] after_join;
              initial begin
                after_join = 0;
                s = $random;
                fork
                  begin if (s) #3; else #3; end
                  #3;
                join
                after_join = after_join + 1;
              end
            endmodule
        """)
        after = sim.value("after_join")
        assert after.substitute({0: True}).to_int() == 1
        assert after.substitute({0: False}).to_int() == 1

    def test_cross_validates(self):
        from tests.integration.test_cross_validation import cross_validate

        cross_validate("""
            module tb; reg [1:0] v; reg [7:0] log_val;
              initial begin
                v = $random;
                log_val = 0;
                fork
                  begin #2 log_val = log_val + v; end
                  begin #4 log_val = log_val * 2; end
                  begin if (v[0]) #6 log_val = log_val + 1; end
                join
                log_val = log_val + 100;
              end
            endmodule
        """, nets=["log_val"], until=50)
