"""Mid-simulation GC/reordering must be invisible to results.

Stress layer: the Fig. 10 arbiter (exhaustive property checking over
all request sequences) is re-run with a tiny GC threshold — a
collection after nearly every time step — and with dynamic sifting on
top, asserting the :class:`SimResult` and the final symbolic values
are unchanged from the unmanaged baseline.  Also pins the safe-point
contract: calling :meth:`Kernel.reorder` from *inside* the event loop
(where raw node ids live in interpreter locals) raises a clear
:class:`ReproError` instead of silently corrupting state.
"""

import random

import pytest

import repro
from repro import SimOptions
from repro.compile.instructions import Exec
from repro.errors import ReproError, SimulationError
from tests.integration.test_arbiter import run_arbiter


def sampled_tables(sim, nets, max_cases=32):
    """Name-keyed truth samples — comparable across variable orders."""
    mgr = sim.mgr
    names = sorted(mgr.var_name(i) for i in range(mgr.var_count))
    level_of = {mgr.var_name(i): i for i in range(mgr.var_count)}
    tables = {}
    rng = random.Random(7)
    cases = {tuple(rng.random() < 0.5 for _ in names)
             for _ in range(max_cases)}
    for bits in sorted(cases):
        cube = {level_of[name]: bit for name, bit in zip(names, bits)}
        for net in nets:
            tables[(net, bits)] = \
                sim.value(net).substitute(cube).to_verilog_bits()
    return tables


class TestArbiterUnderGc:
    NETS = ("grant", "req_q", "goal")

    def compare(self, options):
        base_result, base_sim = run_arbiter()
        managed_result, managed_sim = run_arbiter(options=options)
        assert managed_result.finished == base_result.finished
        assert managed_result.time == base_result.time
        assert len(managed_result.violations) == \
            len(base_result.violations)
        assert managed_result.stats.symbols_injected == \
            base_result.stats.symbols_injected
        assert managed_result.stats.events_processed == \
            base_result.stats.events_processed
        assert sampled_tables(managed_sim, self.NETS) == \
            sampled_tables(base_sim, self.NETS)
        return managed_sim

    def test_tiny_threshold_gc_is_invisible(self):
        sim = self.compare(SimOptions(gc_threshold=1))
        stats = sim.mgr.cache_stats()
        assert stats["gc_runs"] > 0
        assert stats["gc_reclaimed"] > 0

    def test_gc_plus_sifting_is_invisible(self):
        sim = self.compare(SimOptions(
            gc_threshold=1, dyn_reorder=True,
            reorder_threshold=16, reorder_growth=1.1))
        assert sim.mgr.cache_stats()["gc_runs"] > 0

    def test_peak_nodes_drop_under_gc(self):
        _, base_sim = run_arbiter()
        _, managed_sim = run_arbiter(options=SimOptions(gc_threshold=64))
        assert managed_sim.mgr.peak_nodes < base_sim.mgr.peak_nodes


SRC = """
    module tb; reg [1:0] a; reg [3:0] x;
      initial begin
        a = $random;
        #5 x = a + 1;
        #5 x = x * 2;
      end
    endmodule
"""


class TestSafePointGuard:
    def inject(self, fn):
        """Prepend an Exec instruction to the initial process."""
        sim = repro.open_sim(SRC)
        process = sim.program.processes[0]
        process.instructions.insert(0, Exec(fn))
        return sim

    def test_reorder_inside_event_loop_raises(self):
        sim = self.inject(
            lambda kern, frame: kern.reorder(
                list(range(kern.mgr.var_count))))
        with pytest.raises(SimulationError, match="safe point"):
            sim.run(until=100)

    def test_collect_inside_event_loop_raises(self):
        sim = self.inject(lambda kern, frame: kern.collect_garbage())
        with pytest.raises(ReproError, match="safe point"):
            sim.run(until=100)

    def test_reorder_between_runs_is_legal(self):
        sim = repro.open_sim(SRC)
        sim.run(until=7)
        sim.kernel.reorder(list(range(sim.mgr.var_count)))
        assert sim.kernel.collect_garbage() >= 0
        sim.run(until=100)
        assert sim.value("x") is not None
