"""Tests for post-simulation analysis helpers and BDD reordering."""

import pytest

from repro import analysis
from repro.bdd import BddManager, FALSE, TRUE
from repro.errors import BddError
from tests.conftest import run_source


@pytest.fixture
def min_sim():
    # out = min(a, b) over two 2-bit symbolic operands
    _, sim = run_source("""
        module tb; reg [1:0] a, b, out;
          initial begin
            a = $random; b = $random;
            if (a < b) out = a;
            else out = b;
          end
        endmodule
    """)
    return sim


class TestReachability:
    def test_reachable_values(self, min_sim):
        values = analysis.reachable_values(min_sim, "out")
        assert sorted(values) == ["00", "01", "10", "11"]

    def test_limit(self, min_sim):
        assert len(analysis.reachable_values(min_sim, "out", limit=2)) == 2

    def test_histogram_partitions_space(self, min_sim):
        histogram = analysis.value_histogram(min_sim, "out")
        assert sum(histogram.values()) == 16  # 2^4 stimuli
        # min(a,b) == 3 only when a == b == 3
        assert histogram["11"] == 1
        # min == 0 when a == 0 or b == 0: 4 + 4 - 1 = 7
        assert histogram["00"] == 7

    def test_can_reach_and_witness(self, min_sim):
        assert analysis.can_reach(min_sim, "out", 2)
        witness = analysis.witness_for(min_sim, "out", 2)
        out = min_sim.value("out").substitute(witness)
        assert out.to_int() == 2

    def test_unreachable(self):
        _, sim = run_source("""
            module tb; reg [1:0] a; reg [2:0] out;
              initial begin
                a = $random;
                out = a + 1;     // 1..4: never 0, never >4
              end
            endmodule
        """)
        assert not analysis.can_reach(sim, "out", 0)
        assert not analysis.can_reach(sim, "out", 5)
        assert analysis.witness_for(sim, "out", 7) is None

    def test_xz_values_enumerate(self):
        _, sim = run_source("""
            module tb; reg s; reg [1:0] out;
              initial begin
                s = $random;
                if (s) out = 2'b1z;
                else out = 2'b0x;
              end
            endmodule
        """)
        assert sorted(analysis.reachable_values(sim, "out")) == ["0x", "1z"]
        assert analysis.can_reach(sim, "out", "1z")


class TestRebuild:
    def test_roundtrip_semantics(self):
        m = BddManager()
        a, b, c = m.new_var("a"), m.new_var("b"), m.new_var("c")
        f = m.ite(a, b, c)
        new, mapping = m.rebuild([2, 0, 1], [f])
        g = mapping[f]
        # variable 'a' (old level 0) is now level 1, etc.
        name_to_level = {new.var_name(i): i for i in range(3)}
        for va in (False, True):
            for vb in (False, True):
                for vc in (False, True):
                    old = m.eval(f, {0: va, 1: vb, 2: vc})
                    assignment = {
                        name_to_level["a"]: va,
                        name_to_level["b"]: vb,
                        name_to_level["c"]: vc,
                    }
                    assert new.eval(g, assignment) == old

    def test_order_changes_node_count(self):
        # the classic: comparator x1y1 x2y2... vs x1x2..y1y2..
        def build(order_interleaved):
            m = BddManager()
            n = 6
            if order_interleaved:
                xs = [m.new_var(f"x{i}") for i in range(n)]
                ys = []
                # interleave by creating in x,y,x,y order
            m = BddManager()
            names = []
            if order_interleaved:
                for i in range(n):
                    names += [f"x{i}", f"y{i}"]
            else:
                names = [f"x{i}" for i in range(n)] + \
                        [f"y{i}" for i in range(n)]
            levels = {name: m.new_var(name) for name in names}
            eq = TRUE
            for i in range(n):
                eq = m.and_(eq, m.xnor(levels[f"x{i}"], levels[f"y{i}"]))
            return m.node_count(eq)

        assert build(True) < build(False)

    def test_rebuild_shrinks_bad_order(self):
        n = 5
        m = BddManager()
        xs = [m.new_var(f"x{i}") for i in range(n)]
        ys = [m.new_var(f"y{i}") for i in range(n)]
        eq = TRUE
        for x, y in zip(xs, ys):
            eq = m.and_(eq, m.xnor(x, y))
        blocked = m.node_count(eq)
        # interleave: x0 y0 x1 y1 ...
        order = [level for i in range(n) for level in (i, n + i)]
        new, mapping = m.rebuild(order, [eq])
        interleaved = new.node_count(mapping[eq])
        assert interleaved < blocked

    def test_bad_permutation_rejected(self):
        m = BddManager()
        m.new_var("a")
        m.new_var("b")
        with pytest.raises(BddError):
            m.rebuild([0, 0], [TRUE])
        with pytest.raises(BddError):
            m.rebuild([0], [TRUE])


class TestPriorityAblation:
    def test_fifo_mode_still_correct(self):
        src = """
            module tb; reg [1:0] v; reg [7:0] n; integer k;
              initial begin
                n = 0;
                v = $random;
                for (k = 0; k < 3; k = k + 1) begin
                  if (v == 0) begin #0; end
                  else begin #0; end
                  n = n + 1;
                end
              end
            endmodule
        """
        import itertools

        for depth_first in (True, False):
            _, sim = run_source(src, depth_first_priorities=depth_first)
            n = sim.value("n")
            for bits in itertools.product([False, True], repeat=2):
                assert n.substitute(dict(enumerate(bits))).to_int() == 3

    def test_fifo_mode_is_only_a_performance_knob(self):
        # The ablation changes event processing order and therefore
        # merge opportunity (either direction on small programs) — but
        # never the computed values or violations.
        src = """
            module tb; reg [3:0] v; reg [7:0] n; integer k;
              initial begin
                n = 0;
                v = $random;
                for (k = 0; k < 4; k = k + 1) begin
                  if (v[k]) begin
                    if (v[0]) begin #0; end
                    else begin #0; end
                  end
                  else begin #0; end
                  n = n + 1;
                end
                $assert(n == 4);
              end
            endmodule
        """
        import itertools

        finals = set()
        for depth_first in (True, False):
            result, sim = run_source(src, depth_first_priorities=depth_first)
            assert not result.violations
            n = sim.value("n")
            finals.add(tuple(
                n.substitute(dict(enumerate(bits))).to_int()
                for bits in itertools.product([False, True], repeat=4)
            ))
        assert len(finals) == 1  # identical results either way
