"""Differential fuzz: compiled tier vs interpreter, bit for bit.

The compiled tier (:mod:`repro.compile.codegen`) must be perfectly
invisible: for every design, workload, accumulation mode, memory-
management regime, and checkpoint cut, the full ``SimResult.to_dict()``
payload — outputs, violations, stats, fast-path counters, BDD cache
counters — and the VCD stream must compare equal byte for byte
against the interpreter.  The interpreter is the differential oracle
(``SimOptions(compile_tier=False)`` / ``symsim --no-compile``).
"""

import json
import os

import pytest

import repro
from repro import AccumulationMode, SimOptions
from repro.designs import PLANTED_BUGS, load


#: design -> (loader kwargs, until) — small editions of every Table-1
#: design plus the extra workloads, sized for tier-1 runtime.
WORKLOADS = {
    "gcd": ({"rounds": 1, "width": 3}, 2000),
    "dram": ({"bursts": 1}, 2000),
    "risc8": ({"runtime": 60}, 100),
    "mcu8": ({"runtime": 30, "fixed": True}, 40),
    "alu4": ({"runtime": 30, "fixed": True}, 50),
    "arbiter": ({"runtime": 40}, 60),
}


def run_one(name, *, until, compile_tier, vcd_path=None, resume=None,
            **option_kwargs):
    src, top, defines = load(name, **WORKLOADS[name][0])
    options = SimOptions(compile_tier=compile_tier, echo_output=False,
                         concrete_random=7, vcd_path=vcd_path,
                         **option_kwargs)
    sim = repro.open_sim(src, top=top, options=options, defines=defines,
                         resume=resume)
    result = sim.run(until=until)
    return sim, result


def payload(result):
    """Canonical byte string of the full result, stats included."""
    return json.dumps(result.to_dict(), sort_keys=True)


def assert_differential(name, **option_kwargs):
    until = WORKLOADS[name][1]
    _, ref = run_one(name, until=until, compile_tier=False,
                     **option_kwargs)
    _, new = run_one(name, until=until, compile_tier=True,
                     **option_kwargs)
    assert payload(ref) == payload(new), (
        f"{name}: compiled tier diverged from the interpreter "
        f"({option_kwargs or 'default options'})")
    return ref


class TestAllDesigns:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_bit_identical(self, name):
        assert_differential(name)

    @pytest.mark.parametrize("name", ["gcd", "risc8"])
    @pytest.mark.parametrize("mode", list(AccumulationMode))
    def test_accumulation_modes(self, name, mode):
        assert_differential(name, accumulation=mode)

    @pytest.mark.parametrize("name", ["gcd", "dram"])
    def test_no_fastpath_matrix(self, name):
        # compile_tier x no_fastpath: the unspecialized compiled tier
        # (pure block fusion, no word probes) must also match the
        # no-fastpath interpreter.
        assert_differential(name, no_fastpath=True)

    @pytest.mark.parametrize("name", ["gcd", "risc8"])
    def test_aggressive_gc_and_reorder(self, name):
        assert_differential(name, gc_threshold=64, dyn_reorder=True,
                            reorder_threshold=128)


class TestPlantedBugs:
    @pytest.mark.parametrize("name", sorted(PLANTED_BUGS))
    def test_buggy_editions_agree(self, name):
        entry = PLANTED_BUGS[name]
        src, top, defines = load(name, **entry["params"])
        payloads = []
        for compile_tier in (False, True):
            # Fully symbolic stimulus: the planted bugs only fall out
            # of the symbolic sweep, not one concrete $random draw.
            # Stop at the first violation — a non-pruning mcu8 run
            # accumulates BDD state for minutes (see designs docs).
            options = SimOptions(compile_tier=compile_tier,
                                 echo_output=False)
            sim = repro.open_sim(src, top=top, options=options,
                                 defines=defines)
            result = sim.run(until=entry["until"])
            assert result.violations, f"{name}: planted bug not found"
            payloads.append(payload(result))
        assert payloads[0] == payloads[1]


class TestVcdStreams:
    @pytest.mark.parametrize("name", ["gcd", "arbiter"])
    def test_vcd_byte_identical(self, name, tmp_path):
        until = WORKLOADS[name][1]
        streams = []
        for compile_tier in (False, True):
            path = tmp_path / f"{name}_{int(compile_tier)}.vcd"
            run_one(name, until=until, compile_tier=compile_tier,
                    vcd_path=str(path))
            with open(path, "rb") as handle:
                streams.append(handle.read())
        assert streams[0], "VCD stream is empty"
        assert streams[0] == streams[1]


class TestCheckpointAcrossTiers:
    """A checkpoint is a tier-neutral artifact: saving under one tier
    and resuming under the other must land on the interpreter-only
    reference, in every combination."""

    def _final(self, name, until, save_tier, resume_tier, tmp_path):
        src, top, defines = load(name, **WORKLOADS[name][0])
        options = SimOptions(compile_tier=save_tier, echo_output=False,
                             concrete_random=7)
        sim = repro.open_sim(src, top=top, options=options,
                             defines=defines)
        sim.run(until=until // 2)
        ckpt = os.path.join(tmp_path, f"{name}_{save_tier}_{resume_tier}")
        repro.save_checkpoint(sim.kernel, ckpt)
        resumed = repro.open_sim(
            src, top=top, defines=defines, resume=ckpt,
            options=SimOptions(compile_tier=resume_tier,
                               echo_output=False, concrete_random=7))
        return payload(resumed.run(until=until))

    @pytest.mark.parametrize("save_tier,resume_tier",
                             [(False, True), (True, False), (True, True)])
    def test_gcd_resume_matrix(self, save_tier, resume_tier, tmp_path):
        reference = self._final("gcd", WORKLOADS["gcd"][1],
                                False, False, str(tmp_path))
        crossed = self._final("gcd", WORKLOADS["gcd"][1],
                              save_tier, resume_tier, str(tmp_path))
        assert crossed == reference


class TestTierMechanics:
    def test_compiled_tier_actually_ran(self):
        sim, _ = run_one("gcd", until=WORKLOADS["gcd"][1],
                         compile_tier=True)
        stats = sim.kernel.compile_tier_stats()
        assert stats is not None
        assert stats["blocks"] > 0
        assert stats["fused_instructions"] > 0
        assert stats["tier_hits"] + stats["tier_misses"] > 0

    def test_interpreter_reports_no_tier(self):
        sim, _ = run_one("gcd", until=WORKLOADS["gcd"][1],
                         compile_tier=False)
        assert sim.kernel.compile_tier_stats() is None
