"""Live-kernel variable reordering: pause, reorder, continue."""

import itertools

import pytest

import repro
from repro.errors import BddError
from tests.conftest import run_source

SRC = """
    module tb; reg clk; reg [1:0] d, q; reg [4:0] acc;
      initial begin
        clk = 0; acc = 0;
        repeat (3) begin
          d = $random;
          #5 clk = 1;
          #5 clk = 0;
        end
        $finish;
      end
      always @(posedge clk) begin
        q <= d;
        acc <= acc + d[0];
      end
    endmodule
"""


def final_table(sim, net, nvars):
    value = sim.value(net)
    mgr = sim.mgr
    name_of = {i: mgr.var_name(i) for i in range(mgr.var_count)}
    table = {}
    # key assignments by *variable name* so tables are order-independent
    for bits in itertools.product([False, True], repeat=nvars):
        by_level = dict(enumerate(bits))
        by_name = tuple(sorted(
            (name_of[level], bit) for level, bit in by_level.items()
        ))
        # build assignment in this manager's level space
        level_of = {name: level for level, name in name_of.items()}
        assignment = {level_of[name]: bit for name, bit in by_name}
        table[by_name] = value.substitute(assignment).to_verilog_bits()
    return table


class TestReorderMidRun:
    def test_results_unchanged_after_reorder(self):
        baseline = repro.open_sim(SRC)
        baseline.run(until=200)

        paused = repro.open_sim(SRC)
        paused.run(until=33)  # mid-run: waiters + pending events live
        nvars = paused.mgr.var_count
        assert nvars > 0
        order = list(reversed(range(nvars)))
        paused.kernel.reorder(order)
        paused.run(until=200)

        assert paused.mgr.var_count == baseline.mgr.var_count
        n = baseline.mgr.var_count
        for net in ("q", "acc"):
            assert final_table(paused, net, n) == \
                final_table(baseline, net, n)

    def test_reorder_preserves_violations(self):
        sim = repro.open_sim("""
            module tb; reg [3:0] a;
              initial begin
                a = $random;
                #5;
                if (a == 11) $error;
              end
            endmodule
        """)
        sim.run(until=2)
        sim.kernel.reorder([3, 2, 1, 0])
        result = sim.run()
        assert len(result.violations) == 1
        concrete = sim.resimulate(result.violations[0])
        assert concrete.violations
        assert concrete.value("a").to_int() == 11

    def test_identity_reorder_is_noop_semantically(self):
        sim = repro.open_sim(SRC)
        sim.run(until=33)
        before = sim.value("acc")
        bits_before = [
            (sim.mgr.to_expr(a), sim.mgr.to_expr(b)) for a, b in before.bits
        ]
        sim.kernel.reorder(list(range(sim.mgr.var_count)))
        after = sim.value("acc")
        bits_after = [
            (sim.mgr.to_expr(a), sim.mgr.to_expr(b)) for a, b in after.bits
        ]
        assert bits_before == bits_after

    def test_bad_order_rejected(self):
        sim = repro.open_sim(SRC)
        sim.run(until=33)
        with pytest.raises(BddError):
            sim.kernel.reorder([0])

    def test_reorder_with_memories_and_assertions(self):
        sim = repro.open_sim("""
            module tb; reg [1:0] a; reg [3:0] m [0:3]; reg goal;
              initial begin
                goal = 0;
                $assert(goal == 0);
                a = $random;
                m[a] = 4'hC;
                #5;
                if (m[a] !== 4'hC) goal = 1;
                #5;
              end
            endmodule
        """)
        sim.run(until=2)
        sim.kernel.reorder([1, 0])
        result = sim.run()
        assert not result.violations
