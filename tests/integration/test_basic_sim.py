"""Concrete (non-symbolic) simulation semantics.

These tests pin down conventional Verilog behavior: the symbolic
simulator must agree with a standard event-driven simulator whenever
all values are concrete.
"""

import pytest

from tests.conftest import run_source, run_value


class TestAssignments:
    def test_blocking_order(self):
        assert run_value("""
            module tb; reg [3:0] a, b;
              initial begin a = 1; b = a + 1; a = b + 1; end
            endmodule
        """, "a") == "0011"

    def test_nonblocking_swap(self):
        result, sim = run_source("""
            module tb; reg [3:0] a, b;
              initial begin
                a = 1; b = 2;
                a <= b; b <= a;
                #1;
                if (a !== 2 || b !== 1) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_nba_reads_old_value_same_step(self):
        result, _ = run_source("""
            module tb; reg [3:0] a, b;
              initial begin
                a = 5;
                a <= 7;
                b = a;        // still old value
                if (b !== 5) $error;
                #1;
                if (a !== 7) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_intra_assignment_delay(self):
        result, _ = run_source("""
            module tb; reg [3:0] a, b;
              initial begin
                a = 3;
                b = #5 a;       // RHS sampled now, applied at t=5
                if ($time !== 5) $error;
                if (b !== 3) $error;
              end
              initial #2 a = 9;  // does not affect the captured value
            endmodule
        """)
        assert not result.violations

    def test_nonblocking_intra_delay(self):
        result, _ = run_source("""
            module tb; reg [3:0] a;
              initial begin
                a = 0;
                a <= #10 4;
                #9 if (a !== 0) $error;
                #2 if (a !== 4) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_part_select_assign(self):
        assert run_value("""
            module tb; reg [7:0] v;
              initial begin v = 8'hFF; v[5:2] = 4'b0000; end
            endmodule
        """, "v") == "11000011"

    def test_bit_select_assign(self):
        assert run_value("""
            module tb; reg [3:0] v;
              initial begin v = 4'b0000; v[2] = 1; end
            endmodule
        """, "v") == "0100"

    def test_concat_lvalue(self):
        result, sim = run_source("""
            module tb; reg [3:0] hi, lo;
              initial {hi, lo} = 8'hA5;
            endmodule
        """)
        assert sim.value("hi").to_int() == 0xA
        assert sim.value("lo").to_int() == 0x5

    def test_ascending_range_part_select(self):
        assert run_value("""
            module tb; reg [0:7] v;
              initial begin v = 8'h0F; v[0:3] = 4'hA; end
            endmodule
        """, "v") == "10101111"  # v = 00001111, MSB nibble [0:3] -> 1010

    def test_out_of_range_bit_write_vanishes(self):
        assert run_value("""
            module tb; reg [3:0] v;
              initial begin v = 4'b1111; v[9] = 0; end
            endmodule
        """, "v") == "1111"


class TestDelaysAndTime:
    def test_delay_accumulates(self):
        result, _ = run_source("""
            module tb;
              initial begin
                #3; #4; #5;
                if ($time !== 12) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_zero_delay_is_inactive_region(self):
        # A #0 statement runs after other active events of the step.
        result, _ = run_source("""
            module tb; reg [3:0] a;
              initial begin #0 if (a !== 5) $error; end
              initial a = 5;
            endmodule
        """)
        assert not result.violations

    def test_delay_expression(self):
        result, _ = run_source("""
            module tb;
              parameter D = 7;
              initial begin #(D + 1); if ($time !== 8) $error; end
            endmodule
        """)
        assert not result.violations

    def test_two_initial_blocks_interleave(self):
        result, _ = run_source("""
            module tb; reg [3:0] log_a, log_b;
              initial begin #2 log_a = 1; #4 log_a = 2; end
              initial begin #3 log_b = 1; #4 log_b = 2; end
              initial begin
                #10;
                if (log_a !== 2 || log_b !== 2) $error;
              end
            endmodule
        """)
        assert not result.violations


class TestControlFlow:
    def test_if_else_chain(self):
        assert run_value("""
            module tb; reg [3:0] x, y;
              initial begin
                x = 7;
                if (x < 3) y = 0;
                else if (x < 6) y = 1;
                else if (x < 9) y = 2;
                else y = 3;
              end
            endmodule
        """, "y") == "0010"

    def test_case_default(self):
        assert run_value("""
            module tb; reg [1:0] s; reg [3:0] y;
              initial begin
                s = 2;
                case (s)
                  0: y = 10;
                  1: y = 11;
                  default: y = 15;
                endcase
              end
            endmodule
        """, "y") == "1111"

    def test_case_multi_label(self):
        assert run_value("""
            module tb; reg [2:0] s; reg y;
              initial begin
                s = 5;
                case (s) 1, 3, 5, 7: y = 1; default: y = 0; endcase
              end
            endmodule
        """, "y") == "1"

    def test_casez_wildcards(self):
        assert run_value("""
            module tb; reg [3:0] s; reg [1:0] y;
              initial begin
                s = 4'b1011;
                casez (s)
                  4'b0???: y = 0;
                  4'b11??: y = 1;
                  4'b1???: y = 2;
                  default: y = 3;
                endcase
              end
            endmodule
        """, "y") == "10"  # 1011 misses 0???/11??, hits 1???

    def test_for_loop_sum(self):
        result, sim = run_source("""
            module tb; integer i; reg [7:0] sum;
              initial begin
                sum = 0;
                for (i = 1; i <= 10; i = i + 1) sum = sum + i;
              end
            endmodule
        """)
        assert sim.value("sum").to_int() == 55

    def test_while_loop(self):
        result, sim = run_source("""
            module tb; reg [7:0] n, steps;
              initial begin
                n = 27; steps = 0;
                while (n != 1) begin
                  if (n[0]) n = n + n + n + 1;
                  else n = n >> 1;
                  steps = steps + 1;
                end
              end
            endmodule
        """)
        assert sim.value("n").to_int() == 1

    def test_repeat_with_delay(self):
        result, _ = run_source("""
            module tb;
              initial begin
                repeat (4) #5;
                if ($time !== 20) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_repeat_zero_times(self):
        assert run_value("""
            module tb; reg [3:0] x;
              initial begin x = 1; repeat (0) x = 9; end
            endmodule
        """, "x") == "0001"

    def test_forever_with_finish(self):
        result, _ = run_source("""
            module tb; reg [7:0] n;
              initial begin
                n = 0;
                forever begin
                  #1 n = n + 1;
                  if (n == 5) $finish;
                end
              end
            endmodule
        """)
        assert result.finished
        assert result.time == 5

    def test_named_block_disable_as_break(self):
        result, sim = run_source("""
            module tb; integer i; reg [7:0] found;
              initial begin : search
                found = 0;
                for (i = 0; i < 100; i = i + 1) begin
                  if (i == 12) begin
                    found = i;
                    disable search;
                  end
                end
                found = 99;  // skipped by disable
              end
            endmodule
        """)
        assert sim.value("found").to_int() == 12

    def test_disable_inner_block_as_continue(self):
        result, sim = run_source("""
            module tb; integer i; reg [7:0] sum;
              initial begin
                sum = 0;
                for (i = 0; i < 6; i = i + 1) begin : body
                  if (i == 3) disable body;   // 'continue'
                  sum = sum + i;
                end
              end
            endmodule
        """)
        assert sim.value("sum").to_int() == 0 + 1 + 2 + 4 + 5


class TestContinuousAssigns:
    def test_simple_assign_tracks(self):
        result, _ = run_source("""
            module tb; reg [3:0] a; wire [3:0] y;
              assign y = a + 1;
              initial begin
                a = 3; #1;
                if (y !== 4) $error;
                a = 9; #1;
                if (y !== 10) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_assign_delay_transport(self):
        result, _ = run_source("""
            module tb; reg a; wire y;
              assign #3 y = a;
              initial begin
                a = 0; #10;
                a = 1;
                #2 if (y !== 0) $error;
                #2 if (y !== 1) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_multiple_drivers_resolution(self):
        result, _ = run_source("""
            module tb; reg a, en1, en2; wire y;
              assign y = en1 ? a : 1'bz;
              assign y = en2 ? ~a : 1'bz;
              initial begin
                a = 1; en1 = 1; en2 = 0; #1;
                if (y !== 1) $error;
                en1 = 0; en2 = 1; #1;
                if (y !== 0) $error;
                en1 = 1; #1;
                if (y !== 1'bx) $error;   // conflict
                en1 = 0; en2 = 0; #1;
                if (y !== 1'bz) $error;   // undriven
              end
            endmodule
        """)
        assert not result.violations

    def test_assign_chain(self):
        result, _ = run_source("""
            module tb; reg [3:0] a; wire [3:0] b, c, d;
              assign b = a + 1;
              assign c = b + 1;
              assign d = c + 1;
              initial begin
                a = 0; #1;
                if (d !== 3) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_gate_primitives(self):
        result, _ = run_source("""
            module tb; reg a, b; wire o_and, o_nor, o_not, o_xor;
              and g0(o_and, a, b);
              nor g1(o_nor, a, b);
              not g2(o_not, a);
              xor g3(o_xor, a, b);
              initial begin
                a = 1; b = 0; #1;
                if (o_and !== 0 || o_nor !== 0 || o_not !== 0 || o_xor !== 1)
                  $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_part_select_assign_target(self):
        result, _ = run_source("""
            module tb; reg [3:0] a; wire [7:0] y;
              assign y[7:4] = a;
              assign y[3:0] = ~a;
              initial begin
                a = 4'b1010; #1;
                if (y !== 8'b1010_0101) $error;
              end
            endmodule
        """)
        assert not result.violations


class TestOutputTasks:
    def test_display_formats(self):
        result, _ = run_source("""
            module tb; reg [7:0] v;
              initial begin
                v = 8'hA5;
                $display("d=%d b=%b h=%h o=%o", v, v, v, v);
                $display("pct=%% mod=%m");
                $write("no");
                $write("newline");
              end
            endmodule
        """)
        assert result.output[0] == "d=165 b=10100101 h=a5 o=245"
        assert result.output[1] == "pct=% mod=tb"
        assert result.output[2] == "nonewline"

    def test_display_width_pad(self):
        result, _ = run_source("""
            module tb; initial $display("[%5d]", 8'd42); endmodule
        """)
        assert result.output == ["[   42]"]

    def test_monitor_on_change(self):
        result, _ = run_source("""
            module tb; reg [3:0] v;
              initial begin
                $monitor("v=%d", v);
                v = 1;
                #1 v = 2;
                #1 v = 2;  // no change, no print
                #1 v = 3;
              end
            endmodule
        """)
        assert result.output == ["v=1", "v=2", "v=3"]

    def test_strobe_end_of_step(self):
        result, _ = run_source("""
            module tb; reg [3:0] v;
              initial begin
                v = 1;
                $strobe("v=%d", v);
                v = 2;   // strobe sees the final value of the step
              end
            endmodule
        """)
        assert result.output == ["v=2"]

    def test_time_format(self):
        result, _ = run_source("""
            module tb; initial begin #42 $display("t=%0t", $time); end
            endmodule
        """)
        assert result.output == ["t=42"]

    def test_stop_flag(self):
        result, _ = run_source("module tb; initial $stop; endmodule")
        assert result.stopped
