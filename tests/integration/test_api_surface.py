"""The supported public surface: ``repro.__all__``, the documented
quickstart, the exception contract, and the deprecation shims."""

from __future__ import annotations

import textwrap

import pytest

import repro
from repro import errors


def _quickstart_code() -> str:
    """The quickstart block from ``repro.__doc__``, verbatim."""
    doc = repro.__doc__
    _, _, rest = doc.partition("Quick start::")
    lines = []
    for line in rest.splitlines()[1:]:
        if line and not line.startswith(" "):
            break  # next docstring paragraph
        lines.append(line)
    code = textwrap.dedent("\n".join(lines)).strip()
    assert code.startswith("import repro")
    return code


def test_quickstart_runs_verbatim(capsys):
    exec(compile(_quickstart_code(), "<quickstart>", "exec"), {})
    # the quickstart prints the violation's concrete error trace
    assert "$assert" in capsys.readouterr().out


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"


def test_every_public_exception_inherits_repro_error():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, repro.ReproError), name


def test_errors_module_is_the_exception_namespace():
    assert repro.errors is errors
    exported = [name for name in dir(errors)
                if isinstance(getattr(errors, name), type)
                and issubclass(getattr(errors, name), Exception)]
    for name in exported:
        assert issubclass(getattr(errors, name), errors.ReproError), name
    # the obs metric error opts into the contract too
    from repro.obs.metrics import MetricError

    assert issubclass(MetricError, errors.ReproError)
    assert issubclass(MetricError, ValueError)  # historical base kept


TRIVIAL = "module t; initial $finish; endmodule"


def test_open_sim_requires_exactly_one_input(tmp_path):
    with pytest.raises(repro.CompileError, match="exactly one"):
        repro.open_sim()
    with pytest.raises(repro.CompileError, match="exactly one"):
        repro.open_sim(TRIVIAL, path="x.v")
    design = tmp_path / "t.v"
    design.write_text(TRIVIAL)
    assert repro.open_sim(path=str(design)).run().finished
    assert repro.open_sim(TRIVIAL).run().finished


def test_open_sim_resume_roundtrip(tmp_path):
    source = """
    module tb;
      reg [7:0] n;
      initial begin
        n = 1;
        repeat (6) #10 n = n + n;
      end
    endmodule
    """
    sim = repro.open_sim(source)
    sim.run(until=25)
    ckpt = str(tmp_path / "mid.ckpt")
    repro.save_checkpoint(sim.kernel, ckpt)
    resumed = repro.open_sim(source, resume=ckpt)
    final = resumed.run()
    solo = repro.open_sim(source)
    expect = solo.run()
    assert final.time == expect.time
    assert resumed.value("n").to_verilog_bits() == \
        solo.value("n").to_verilog_bits()


STEPPED = """
module t;
  reg [3:0] k;
  initial begin
    k = 0;
    repeat (4) #10 k = k + 1;
    $finish;
  end
endmodule
"""


@pytest.mark.parametrize("shim", [
    "from_source", "from_file", "resume_source", "resume_file",
])
def test_shims_warn_and_work(tmp_path, shim):
    design = tmp_path / "t.v"
    design.write_text(STEPPED)
    ckpt = str(tmp_path / "t.ckpt")
    sim = repro.open_sim(STEPPED)
    sim.run(until=15)
    repro.save_checkpoint(sim.kernel, ckpt)
    calls = {
        "from_source": lambda: repro.SymbolicSimulator.from_source(STEPPED),
        "from_file": lambda: repro.SymbolicSimulator.from_file(str(design)),
        "resume_source": lambda: repro.SymbolicSimulator.resume_source(
            STEPPED, ckpt),
        "resume_file": lambda: repro.SymbolicSimulator.resume_file(
            str(design), ckpt),
    }
    with pytest.deprecated_call(match="open_sim"):
        built = calls[shim]()
    result = built.run()
    assert result.finished
    assert built.value("k").to_int() == 4


def test_request_open_matches_open_sim():
    request = repro.RunRequest(name="one", source=TRIVIAL)
    assert request.open().run().finished


def test_suite_runs_deprecation_clean():
    """Nothing in the repo leans on the deprecated shims any more.

    Two layers: the pytest config escalates the shim's
    DeprecationWarning to an error for the whole suite (so any test,
    fixture, or helper that still calls ``from_*``/``resume_*`` fails
    loudly — except the shim tests above, whose ``deprecated_call``
    bypasses the filter), and the supported ``open_sim`` path itself
    must be warning-free.
    """
    import os
    import warnings

    pyproject = os.path.join(os.path.dirname(__file__), "..", "..",
                             "pyproject.toml")
    with open(pyproject, "r", encoding="utf-8") as handle:
        assert "error:SymbolicSimulator" in handle.read()

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        sim = repro.open_sim(TRIVIAL)
        sim.run()
