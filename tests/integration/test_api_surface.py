"""The supported public surface: ``repro.__all__``, the documented
quickstart, the exception contract, and the completed deprecation
cycle (the pre-1.1 ``from_*``/``resume_*`` shims are gone)."""

from __future__ import annotations

import textwrap

import pytest

import repro
from repro import errors


def _quickstart_code() -> str:
    """The quickstart block from ``repro.__doc__``, verbatim."""
    doc = repro.__doc__
    _, _, rest = doc.partition("Quick start::")
    lines = []
    for line in rest.splitlines()[1:]:
        if line and not line.startswith(" "):
            break  # next docstring paragraph
        lines.append(line)
    code = textwrap.dedent("\n".join(lines)).strip()
    assert code.startswith("import repro")
    return code


def test_quickstart_runs_verbatim(capsys):
    exec(compile(_quickstart_code(), "<quickstart>", "exec"), {})
    # the quickstart prints the violation's concrete error trace
    assert "$assert" in capsys.readouterr().out


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"


def test_every_public_exception_inherits_repro_error():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, repro.ReproError), name


def test_errors_module_is_the_exception_namespace():
    assert repro.errors is errors
    exported = [name for name in dir(errors)
                if isinstance(getattr(errors, name), type)
                and issubclass(getattr(errors, name), Exception)]
    for name in exported:
        assert issubclass(getattr(errors, name), errors.ReproError), name
    # the obs metric error opts into the contract too
    from repro.obs.metrics import MetricError

    assert issubclass(MetricError, errors.ReproError)
    assert issubclass(MetricError, ValueError)  # historical base kept


TRIVIAL = "module t; initial $finish; endmodule"


def test_open_sim_requires_exactly_one_input(tmp_path):
    with pytest.raises(repro.CompileError, match="exactly one"):
        repro.open_sim()
    with pytest.raises(repro.CompileError, match="exactly one"):
        repro.open_sim(TRIVIAL, path="x.v")
    design = tmp_path / "t.v"
    design.write_text(TRIVIAL)
    assert repro.open_sim(path=str(design)).run().finished
    assert repro.open_sim(TRIVIAL).run().finished


def test_open_sim_resume_roundtrip(tmp_path):
    source = """
    module tb;
      reg [7:0] n;
      initial begin
        n = 1;
        repeat (6) #10 n = n + n;
      end
    endmodule
    """
    sim = repro.open_sim(source)
    sim.run(until=25)
    ckpt = str(tmp_path / "mid.ckpt")
    repro.save_checkpoint(sim.kernel, ckpt)
    resumed = repro.open_sim(source, resume=ckpt)
    final = resumed.run()
    solo = repro.open_sim(source)
    expect = solo.run()
    assert final.time == expect.time
    assert resumed.value("n").to_verilog_bits() == \
        solo.value("n").to_verilog_bits()


STEPPED = """
module t;
  reg [3:0] k;
  initial begin
    k = 0;
    repeat (4) #10 k = k + 1;
    $finish;
  end
endmodule
"""


@pytest.mark.parametrize("shim", [
    "from_source", "from_file", "resume_source", "resume_file",
])
def test_deprecated_shims_are_gone(shim):
    """The pre-1.1 constructor shims completed their deprecation cycle:
    they were removed outright, not left to warn forever."""
    assert not hasattr(repro.SymbolicSimulator, shim)


def test_stepped_design_runs_via_open_sim():
    sim = repro.open_sim(STEPPED)
    assert sim.run().finished
    assert sim.value("k").to_int() == 4


def test_request_open_matches_open_sim():
    request = repro.RunRequest(name="one", source=TRIVIAL)
    assert request.open().run().finished


def test_serve_surface_is_exported():
    """The serving front door is part of the supported surface."""
    for name in ("ServeApp", "ServeConfig", "TenantQuota", "serve_app"):
        assert name in repro.__all__, name
    from repro.serve import ServeConfig, TenantQuota, serve_app

    assert repro.ServeConfig is ServeConfig
    assert repro.TenantQuota is TenantQuota
    assert repro.serve_app is serve_app


def test_api_module_is_exported():
    """``repro.api`` — the one request/options parsing surface — is
    public, and RequestError joined the exception contract."""
    assert "api" in repro.__all__ and "RequestError" in repro.__all__
    assert repro.api.REQUEST_SCHEMA == "repro.serve.request/1"
    assert issubclass(repro.RequestError, repro.ReproError)


def test_open_sim_path_is_warning_free():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        sim = repro.open_sim(TRIVIAL)
        sim.run()
