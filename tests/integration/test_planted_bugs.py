"""Planted-bug regression corpus (:data:`repro.designs.PLANTED_BUGS`).

Each corpus entry is a design with a deliberately planted bug and a
time horizon that provably exposes it.  Three guarantees, per entry:

1. the symbolic run finds the bug within the registered horizon;
2. the violation's error trace replays *concretely* (the paper's
   Section-5 witness round trip);
3. the fixed edition runs clean over the same horizon — asserted in
   tier-1 only for entries whose clean run is cheap (``fixed_fast``;
   a clean symbolic mcu8 run accumulates BDD state for minutes).

Finally, one mutation campaign over the corpus: the fixed alu4 as the
clean baseline, every buggy edition as an explicit variant — the
campaign must detect 100% of the planted bugs with concretely
verified witnesses, and still report a mutation score with the
per-operator breakdown (the ISSUE's acceptance gate).
"""

from __future__ import annotations

import pytest

import repro
from repro import designs
from repro.designs import PLANTED_BUGS
from repro.mutate import CampaignConfig, Variant, run_campaign

CORPUS = sorted(PLANTED_BUGS)


def open_design(name: str, fixed: bool):
    entry = PLANTED_BUGS[name]
    source, top, defines = designs.load(name, fixed=fixed,
                                        **entry["params"])
    return repro.open_sim(source, top=top, defines=defines), entry


def test_corpus_is_registered():
    assert "mcu8" in PLANTED_BUGS and "alu4" in PLANTED_BUGS
    for name, entry in PLANTED_BUGS.items():
        assert entry["description"], name
        assert entry["until"] > 0, name


@pytest.mark.parametrize("name", CORPUS)
def test_planted_bug_found_symbolically_with_concrete_witness(name):
    sim, entry = open_design(name, fixed=False)
    result = sim.run(until=entry["until"])
    assert result.status is repro.SimStatus.ASSERT_FAILED, \
        f"{name}: planted bug not found within until={entry['until']}"
    violation = result.violations[0]
    assert violation.trace.entries
    # the symbolic counterexample must replay as a concrete failure
    replay = sim.resimulate(violation, until=entry["until"])
    assert replay.status is repro.SimStatus.ASSERT_FAILED


@pytest.mark.parametrize(
    "name", [n for n in CORPUS if PLANTED_BUGS[n]["fixed_fast"]])
def test_fixed_edition_runs_clean(name):
    sim, entry = open_design(name, fixed=True)
    result = sim.run(until=entry["until"])
    assert result.status is repro.SimStatus.OK
    assert not result.violations


def test_campaign_detects_every_planted_bug():
    entry = PLANTED_BUGS["alu4"]
    source, top, defines = designs.load("alu4", fixed=True,
                                        **entry["params"])
    variants = []
    horizon = 0
    for name in CORPUS:
        bug = PLANTED_BUGS[name]
        v_source, v_top, v_defines = designs.load(name, **bug["params"])
        variants.append(Variant(name=f"planted-{name}", source=v_source,
                                top=v_top, defines=v_defines))
        horizon = max(horizon, bug["until"])

    report = run_campaign(
        CampaignConfig(source=source, top=top, defines=defines,
                       operators=["opswap", "cmpswap", "stuck1"],
                       until=horizon, variants=variants,
                       verify_witnesses=True),
        workers=2)

    # 100% of the planted bugs: detected, witness concretely verified
    assert report.totals["variants"] == len(CORPUS)
    for outcome in report.variants:
        assert outcome.classification == "detected", outcome.id
        assert outcome.witness is not None, outcome.id
        assert outcome.witness_verified is True, outcome.id

    # the generated mutants still produce a real score + breakdown
    assert report.baseline_status == "ok"
    assert report.score is not None and report.score > 0
    assert set(report.by_operator) == {"opswap", "cmpswap", "stuck1"}
    buckets = ("detected", "undetected", "aborted", "invalid")
    # rows fold back to the totals; cmpswap legitimately has no sites
    # in the alu4 datapath (its comparisons all live in the checker)
    assert sum(sum(row[b] for b in buckets)
               for row in report.by_operator.values()) \
        == report.totals["planned"]
    for operator in ("opswap", "stuck1"):
        assert sum(report.by_operator[operator][b] for b in buckets) > 0
