"""Cross-validation: symbolic simulation vs. concrete simulation.

The strongest end-to-end property the simulator has: for ANY design,
substituting a concrete assignment into the symbolic run's final values
must equal the result of a conventional (concrete-$random) run that was
fed exactly those values.  This exercises the entire stack — guarded
writes, event accumulation, wake conditions, NBA ordering — against the
ordinary event-driven semantics that the same kernel implements when
all values are concrete.
"""

import itertools

import pytest

import repro
from repro import SimOptions
from repro.sim.trace import ErrorTrace, TraceEntry


def cross_validate(source, nets, until=None, max_cases=16, top=None,
                   options=None):
    """Run symbolically once, then per concrete case compare every net.

    Concrete runs are driven through the resimulation machinery: the
    recorded invocation log tells us how many values each call site
    consumed on a given path.  ``options`` overrides the symbolic run's
    :class:`SimOptions` — e.g. to force aggressive BDD GC/reordering
    and differentially test that memory management never perturbs
    results.
    """
    if options is None:
        options = SimOptions(stop_on_violation=False)
    sim = repro.open_sim(
        source, top=top, options=options)
    sim.run(until=until)
    mgr = sim.mgr
    levels = list(range(mgr.var_count))
    assert levels, "design under cross-validation must inject symbols"

    cases = itertools.islice(
        itertools.product([False, True], repeat=len(levels)), max_cases
    )
    where = {c.index: c.where for c in sim.program.callsites}
    for bits in cases:
        cube = dict(zip(levels, bits))
        entries = []
        for inv in sim.kernel.random_log:
            executed = mgr.eval(inv.control, cube)
            value = None
            if executed:
                chars = []
                for a, b in reversed(inv.vector.bits):
                    if mgr.eval(b, cube):
                        chars.append("x" if mgr.eval(a, cube) else "z")
                    else:
                        chars.append("1" if mgr.eval(a, cube) else "0")
                value = "".join(chars)
            entries.append(TraceEntry(
                callsite_index=inv.callsite_index,
                where=where.get(inv.callsite_index, "?"),
                seq=inv.seq, time=inv.time, executed=executed, value=value))
        trace = ErrorTrace(witness=cube, entries=entries)
        concrete = sim.resimulate(trace, until=until,
                                  expect_violation=False)
        for net in nets:
            symbolic_value = sim.value(net).substitute(cube)
            concrete_value = concrete.value(net)
            assert symbolic_value.bits == concrete_value.bits, (
                f"net {net!r} diverges on case {cube}: symbolic "
                f"{symbolic_value.to_verilog_bits()} vs concrete "
                f"{concrete_value.to_verilog_bits()}"
            )


class TestCrossValidation:
    def test_branching_dataflow(self):
        cross_validate("""
            module tb; reg [1:0] a; reg [3:0] x, y;
              initial begin
                a = $random;
                x = 0; y = 0;
                if (a == 0) x = 3;
                else if (a == 1) begin x = 5; y = 1; end
                else begin x = a + 7; end
                y = y + x;
              end
            endmodule
        """, nets=["x", "y"])

    def test_delays_and_loops(self):
        cross_validate("""
            module tb; reg [1:0] n; reg [7:0] acc; integer i;
              initial begin
                n = $random;
                acc = 0;
                for (i = 0; i <= n; i = i + 1) begin
                  #2 acc = acc * 3 + i;
                end
              end
            endmodule
        """, nets=["acc"], until=100)

    def test_clocked_nba_pipeline(self):
        cross_validate("""
            module tb; reg clk; reg [1:0] d; reg [1:0] s1, s2;
              initial begin
                clk = 0;
                d = $random;
                s1 = 0; s2 = 0;
                repeat (4) #5 clk = ~clk;
                $finish;
              end
              always @(posedge clk) begin
                s1 <= d;
                s2 <= s1;
              end
            endmodule
        """, nets=["s1", "s2"], until=100)

    def test_handshake_with_symbolic_latency(self):
        cross_validate("""
            module worker(input req, input [1:0] job, output reg done);
              initial done = 0;
              always begin
                @(posedge req);
                if (job == 0) #1 done = 1;
                else if (job == 1) #3 done = 1;
                else #5 done = 1;
                @(negedge req);
                done = 0;
              end
            endmodule
            module tb; reg req; reg [1:0] job; wire done;
              reg [7:0] finish_time;
              worker u(.req(req), .job(job), .done(done));
              initial begin
                req = 0;
                job = $random;
                #1 req = 1;
                @(posedge done);
                finish_time = $time;
                req = 0;
                #1 $finish;
              end
            endmodule
        """, nets=["finish_time"], until=100)

    def test_case_and_memory(self):
        cross_validate("""
            module tb; reg [1:0] sel; reg [3:0] mem [0:3]; reg [3:0] out;
              initial begin
                mem[0] = 4; mem[1] = 5; mem[2] = 6; mem[3] = 7;
                sel = $random;
                case (sel)
                  0, 1: out = mem[sel] + 1;
                  2: out = mem[2] - 1;
                  default: out = 4'hF;
                endcase
                mem[sel] = out;
              end
            endmodule
        """, nets=["out"])

    def test_tasks_and_functions(self):
        cross_validate("""
            module tb; reg [1:0] a; reg [7:0] r;
              function [7:0] weight;
                input [1:0] v;
                case (v)
                  0: weight = 10;
                  1: weight = 20;
                  2: weight = 40;
                  default: weight = 80;
                endcase
              endfunction
              task accumulate;
                input [1:0] v;
                begin
                  #1 r = r + weight(v);
                end
              endtask
              initial begin
                r = 0;
                a = $random;
                accumulate(a);
                accumulate(a + 1);
              end
            endmodule
        """, nets=["r"], until=50)

    def test_xz_paths(self):
        cross_validate("""
            module tb; reg [1:0] s; reg [3:0] out;
              initial begin
                s = $randomxz;              // 4 rails: 16 cases
                if (s === 2'bxx) out = 1;
                else if (s[0] === 1'bz) out = 2;
                else out = {2'b00, s[1], s[0]} ^ 4'b0100;
              end
            endmodule
        """, nets=["out"], max_cases=16)
