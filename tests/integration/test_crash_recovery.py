"""Crash-recovery round trips: checkpoint -> fresh program -> resume.

The checkpoint contract (docs/ROBUSTNESS.md): a run resumed from a
mid-simulation checkpoint — against a *freshly recompiled* program, as
a crashed process would have to — is indistinguishable from the run
that never stopped.  "Indistinguishable" is checked semantically:

* identical final time / finish state / ``$display`` output;
* identical violations (kind, time, site), and their error traces
  still drive concrete resimulations;
* identical VCD waveform *bytes* (the resumed run truncates the file
  back to the checkpointed offset and continues the stream);
* name-keyed sampled truth tables of every net agree — raw BDD node
  ids may differ (operator caches start empty after resume, sift
  timing shifts), the functions must not.

The matrix covers risc8 and the arbiter, with and without mid-run GC
and dynamic reordering — GC/sifting renumber the arena, so they are
exactly the features a naive id-based snapshot would break under.
"""

import random

import pytest

import repro
from repro import SimOptions
from repro.compile import compile_design
from repro.designs import load
from repro.frontend import elaborate, parse_source
from repro.guard import load_checkpoint, save_checkpoint


def compile_named(name, **kwargs):
    source, top, defines = load(name, **kwargs)
    modules = parse_source(source, defines=defines)
    return compile_design(elaborate(modules, top=top))


def build(name, options=None, **kwargs):
    source, top, defines = load(name, **kwargs)
    return repro.open_sim(source, top=top,
                                               defines=defines,
                                               options=options)


def sampled_state_tables(kern, max_cases=24):
    """Name-keyed truth samples of every net (order-independent)."""
    mgr = kern.mgr
    names = sorted(mgr.var_name(i) for i in range(mgr.var_count))
    level_of = {mgr.var_name(i): i for i in range(mgr.var_count)}
    rng = random.Random(11)
    cases = sorted({tuple(rng.random() < 0.5 for _ in names)
                    for _ in range(max_cases)})
    tables = {}
    for net in kern.state.snapshot_names():
        vec = kern.state.value(net)
        for bits in cases:
            cube = {level_of[n]: bit for n, bit in zip(names, bits)}
            tables[(net, bits)] = vec.substitute(cube).to_verilog_bits()
    return tables


def violation_keys(result):
    return [(v.kind, v.time, v.where) for v in result.violations]


def roundtrip(design, pause_at, tmp_path, options_kwargs=None,
              until=None, **design_kwargs):
    """Run uninterrupted vs checkpoint+resume; assert bit-identity."""
    kwargs = dict(options_kwargs or {})
    ref_vcd = str(tmp_path / "ref.vcd")
    res_vcd = str(tmp_path / "res.vcd")

    ref = build(design, options=SimOptions(vcd_path=ref_vcd, **kwargs),
                **design_kwargs)
    ref_result = ref.run(until=until)

    first = build(design, options=SimOptions(vcd_path=res_vcd, **kwargs),
                  **design_kwargs)
    first.run(until=pause_at)
    path = str(tmp_path / "mid.ckpt")
    save_checkpoint(first.kernel, path)
    del first  # the resumed kernel must not depend on the old process state

    program = compile_named(design, **design_kwargs)
    kern = load_checkpoint(program, path,
                           options=SimOptions(vcd_path=res_vcd, **kwargs))
    resumed = kern.run(until=until)

    assert resumed.time == ref_result.time
    assert resumed.finished == ref_result.finished
    assert resumed.output == ref_result.output
    assert violation_keys(resumed) == violation_keys(ref_result)
    assert resumed.stats.events_processed == \
        ref_result.stats.events_processed
    assert resumed.stats.symbols_injected == \
        ref_result.stats.symbols_injected
    assert sampled_state_tables(kern) == \
        sampled_state_tables(ref.kernel)
    with open(ref_vcd, "rb") as a, open(res_vcd, "rb") as b:
        assert a.read() == b.read(), "VCD waveforms diverged after resume"
    return ref_result, resumed, kern, program


class TestRisc8Recovery:
    def test_plain_roundtrip(self, tmp_path):
        roundtrip("risc8", pause_at=40, tmp_path=tmp_path, runtime=80)

    def test_roundtrip_under_gc(self, tmp_path):
        roundtrip("risc8", pause_at=40, tmp_path=tmp_path, runtime=80,
                  options_kwargs=dict(gc_threshold=256))

    def test_roundtrip_under_gc_and_reorder(self, tmp_path):
        roundtrip("risc8", pause_at=40, tmp_path=tmp_path, runtime=80,
                  options_kwargs=dict(gc_threshold=256, dyn_reorder=True,
                                      reorder_threshold=64,
                                      reorder_growth=1.2))


class TestArbiterRecovery:
    def test_plain_roundtrip(self, tmp_path):
        roundtrip("arbiter", pause_at=30, tmp_path=tmp_path, runtime=60,
                  until=100)

    def test_roundtrip_under_gc(self, tmp_path):
        roundtrip("arbiter", pause_at=30, tmp_path=tmp_path, runtime=60,
                  until=100, options_kwargs=dict(gc_threshold=64))

    def test_violation_found_after_resume_still_resimulates(self, tmp_path):
        # Tighten the arbiter's fairness bound so a violation exists,
        # checkpoint *before* it fires, and require the resumed run to
        # find it — with an error trace good enough to replay against
        # the freshly compiled program.
        source, top, defines = load("arbiter", runtime=120)
        source = source.replace("waiting[m] > 4", "waiting[m] > 2")

        ref = repro.open_sim(source, top=top,
                                                  defines=defines)
        ref_result = ref.run(until=300)
        assert ref_result.violations

        first = repro.open_sim(source, top=top,
                                                    defines=defines)
        first.run(until=20)
        path = str(tmp_path / "pre-violation.ckpt")
        save_checkpoint(first.kernel, path)

        program = compile_design(
            elaborate(parse_source(source, defines=defines), top=top))
        kern = load_checkpoint(program, path)
        resumed = kern.run(until=300)
        assert violation_keys(resumed) == violation_keys(ref_result)
        concrete = repro.resimulate_violation(program,
                                              resumed.violations[0],
                                              until=300)
        assert concrete.violations


class TestGuardedRisc8Ladder:
    def test_tiny_node_budget_completes_via_ladder(self):
        # The ISSUE acceptance scenario: a node budget far below the
        # design's natural footprint must not MemoryError or hang — the
        # ladder concretizes $random variables until the run fits, and
        # discloses every choice in the simulation output.
        from repro.guard import ResourceBudgets

        sim = build("risc8", runtime=80, options=SimOptions(
            budgets=ResourceBudgets(max_live_nodes=500,
                                    max_concretizations=64)))
        result = sim.run()
        assert result.finished
        assert sim.mgr.concretized
        disclosures = [line for line in result.output
                       if "concretized $random variable" in line]
        assert len(disclosures) == len(sim.mgr.concretized)

    def test_rolling_checkpoint_resumes_identically(self, tmp_path):
        # --checkpoint-every N: the latest rolling checkpoint must be a
        # valid resume point reproducing the uninterrupted tail.
        ref = build("arbiter", runtime=60)
        ref_result = ref.run(until=100)

        sim = build("arbiter", runtime=60, options=SimOptions(
            checkpoint_every=3, checkpoint_dir=str(tmp_path)))
        sim.run(until=100)
        latest = tmp_path / "latest.ckpt"
        assert latest.exists()

        program = compile_named("arbiter", runtime=60)
        kern = load_checkpoint(program, str(latest))
        resumed = kern.run(until=100)
        assert resumed.time == ref_result.time
        assert resumed.output == ref_result.output
        assert violation_keys(resumed) == violation_keys(ref_result)
