"""The arbiter design: exhaustive property checking over all request
sequences."""

import pytest

import repro
from repro import SimOptions
from repro.designs import load


def run_arbiter(runtime=80, options=None, transform=None):
    source, top, defines = load("arbiter", runtime=runtime)
    if transform is not None:
        source = transform(source)
    sim = repro.open_sim(source, top=top,
                                              defines=defines,
                                              options=options)
    return sim.run(until=runtime + 40), sim


class TestArbiterProperties:
    def test_all_properties_hold_exhaustively(self):
        result, _ = run_arbiter()
        assert result.finished
        assert not result.violations
        # 4 fresh request bits per cycle
        assert result.stats.symbols_injected % 4 == 0
        assert result.stats.symbols_injected >= 16

    def test_checker_detects_tightened_bound(self):
        # A master *can* legitimately wait 3 grants; tightening the
        # fairness bound to > 2 must produce a counterexample — this
        # proves the checker (and the symbolic search) have teeth.
        result, sim = run_arbiter(
            transform=lambda s: s.replace("waiting[m] > 4",
                                          "waiting[m] > 2"))
        assert result.violations
        concrete = sim.resimulate(result.violations[0], until=300)
        assert concrete.violations

    def test_checker_detects_broken_rotation(self):
        # Freeze the rotation pointer: fixed-priority arbitration
        # starves low-priority masters; the fairness check must fire.
        result, sim = run_arbiter(
            runtime=120,
            transform=lambda s: s.replace("last <= 2'd0;",
                                          "last <= 2'd3;"))
        assert result.violations
        concrete = sim.resimulate(result.violations[0], until=300)
        assert concrete.violations

    def test_random_simulation_much_weaker(self):
        # With the tightened bound, random vectors can also stumble on
        # a counterexample — but the symbolic run *guarantees* finding
        # it if one exists within the horizon. Verify at minimum that
        # the random baseline runs clean on the correct design.
        result, _ = run_arbiter(
            options=SimOptions(concrete_random=11))
        assert not result.violations
