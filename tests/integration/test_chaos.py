"""Chaos lane (``pytest -m chaos``): real-process crash recovery and
randomized checkpoint corruption.

These tests exercise what the in-process round trips cannot: a run
killed with SIGKILL mid-simulation (no atexit, no flush, no mercy)
resumed by a *separate* CLI invocation from its rolling checkpoint,
and a seeded sweep of byte-level corruptions over a real checkpoint
file, every one of which must be rejected with
:class:`CheckpointError` — never accepted, never a different
exception type.

Kept fast enough for the default lane (a few seconds total); the CI
chaos job runs them nightly on their marker.
"""

import os
import random
import signal
import shutil
import subprocess
import sys
import time

import pytest

import repro
from repro.compile import compile_design
from repro.designs import load
from repro.errors import CheckpointError
from repro.frontend import elaborate, parse_source
from repro.guard import load_checkpoint, read_header, save_checkpoint

pytestmark = pytest.mark.chaos

_VERILOG_DIR = os.path.join(os.path.dirname(repro.__file__), "designs",
                            "verilog")


def _cli_env():
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _symsim(args):
    return [sys.executable, "-m", "repro.cli"] + args


class TestKillMinusNine:
    def test_sigkill_then_cli_resume(self, tmp_path):
        design = shutil.copy(os.path.join(_VERILOG_DIR, "arbiter.v"),
                             tmp_path / "arbiter.v")
        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        # Big runtime: the process cannot finish before the SIGKILL.
        common = [str(design), "--top", "arbiter_tb",
                  "--define", "ARB_RUNTIME=100000", "--quiet"]
        proc = subprocess.Popen(
            _symsim(common + ["--checkpoint-every", "2",
                              "--checkpoint-dir", str(ckpt_dir)]),
            env=_cli_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE)
        deadline = time.time() + 60
        latest = ckpt_dir / "latest.ckpt"
        while time.time() < deadline and not latest.exists():
            time.sleep(0.1)
        assert latest.exists(), "no rolling checkpoint appeared in 60s"
        time.sleep(0.5)  # let a few more checkpoints roll over
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        header = read_header(str(latest))  # survived the kill intact
        resume_until = header["sim_time"] + 40
        result = subprocess.run(
            _symsim(common + ["--resume", str(latest),
                              "--until", str(resume_until)]),
            env=_cli_env(), capture_output=True, text=True, timeout=300)
        assert result.returncode == 0, result.stderr
        assert "simulation ended at time" in result.stdout
        # and the resumed process really continued past the checkpoint
        ended_at = int(result.stdout.split("ended at time")[1].split()[0])
        assert ended_at > header["sim_time"]

    def test_interrupt_checkpoint_roundtrip_across_processes(self, tmp_path):
        design = shutil.copy(os.path.join(_VERILOG_DIR, "risc8.v"),
                             tmp_path / "risc8.v")
        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        common = [str(design), "--top", "risc8_tb",
                  "--define", "RISC_RUNTIME=100000", "--quiet",
                  "--gc-threshold", "20000"]
        proc = subprocess.Popen(
            _symsim(common + ["--checkpoint-dir", str(ckpt_dir)]),
            env=_cli_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        time.sleep(4)
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 130
        assert "interrupted at a safe point" in out
        interrupt = ckpt_dir / "interrupt.ckpt"
        assert interrupt.exists()

        header = read_header(str(interrupt))
        result = subprocess.run(
            _symsim(common + ["--resume", str(interrupt),
                              "--until", str(header["sim_time"] + 20)]),
            env=_cli_env(), capture_output=True, text=True, timeout=300)
        assert result.returncode == 0, result.stderr


class TestCorruptionSweep:
    def test_every_corruption_is_rejected_with_checkpoint_error(
            self, tmp_path):
        source, top, defines = load("arbiter", runtime=60)
        sim = repro.open_sim(source, top=top,
                                                  defines=defines)
        sim.run(until=30)
        pristine = str(tmp_path / "pristine.ckpt")
        save_checkpoint(sim.kernel, pristine)
        program = compile_design(
            elaborate(parse_source(source, defines=defines), top=top))
        # sanity: the pristine checkpoint loads
        load_checkpoint(program, pristine).run(until=40)

        size = os.path.getsize(pristine)
        rng = random.Random(1234)
        victim = str(tmp_path / "victim.ckpt")
        outcomes = {"rejected": 0}
        for trial in range(40):
            shutil.copy(pristine, victim)
            mode = rng.choice(("flip", "truncate", "zero-run"))
            if mode == "flip":
                offset = rng.randrange(size)
                _flip(victim, offset)
            elif mode == "truncate":
                with open(victim, "r+b") as handle:
                    handle.truncate(rng.randrange(size))
            else:
                offset = rng.randrange(size)
                run = min(rng.randrange(1, 64), size - offset)
                with open(victim, "r+b") as handle:
                    handle.seek(offset)
                    handle.write(b"\x00" * run)
            try:
                kern = load_checkpoint(program, victim)
            except CheckpointError:
                outcomes["rejected"] += 1
                continue
            # A flip can hit a byte that keeps the file bit-for-bit
            # valid only if it never changed anything observable; the
            # loaded kernel must then still run.
            kern.run(until=40)
        # overwhelmingly, corruption must be *detected*
        assert outcomes["rejected"] >= 35


def _flip(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
