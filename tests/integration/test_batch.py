"""Batch engine: determinism across pool widths, failure isolation,
manifest loading, and the ``symsim batch`` CLI."""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.batch import (
    BatchResult, RunOutcome, RunRequest, load_manifest, run_batch,
)
from repro.errors import BatchError
from repro.guard import ResourceBudgets
from repro.obs import Observability, Tracer
from repro.sim import SimOptions, SimStatus

COUNTER = """
module tb;
  reg clk; reg [3:0] d; reg [7:0] acc;
  initial clk = 0;
  always #5 clk = !clk;
  initial begin
    acc = 0;
    repeat (4) begin
      @(posedge clk) d = $random;
      acc = acc + d;
    end
    $assert(acc != 60);
    #1 $finish;
  end
endmodule
"""

HANG = """
module tb;
  reg x;
  initial begin
    x = 0;
    while (1) x = !x;
  end
endmodule
"""


def _mix(seeds=(None, 1, 2)):
    return [
        RunRequest(
            name=f"counter-{'sym' if seed is None else seed}",
            source=COUNTER, vcd=True,
            options=SimOptions(concrete_random=seed),
        )
        for seed in seeds
    ]


# ---------------------------------------------------------------------------
# request validation / pickling


def test_request_requires_exactly_one_source():
    with pytest.raises(BatchError):
        RunRequest(name="x")
    with pytest.raises(BatchError):
        RunRequest(name="x", source="module m; endmodule", path="a.v")
    with pytest.raises(BatchError):
        RunRequest(name="", source="module m; endmodule")


def test_request_pickles_with_frozen_defines():
    request = RunRequest(name="r", source=COUNTER,
                         defines={"A": "1"}, until=50)
    clone = pickle.loads(pickle.dumps(request))
    assert clone == request
    assert dict(clone.defines) == {"A": "1"}
    with pytest.raises(TypeError):
        clone.defines["A"] = "2"


def test_requests_with_same_design_share_a_key():
    a = RunRequest(name="a", source=COUNTER,
                   options=SimOptions(concrete_random=1))
    b = RunRequest(name="b", source=COUNTER,
                   options=SimOptions(concrete_random=2))
    assert a.design_key() == b.design_key()


def test_batch_rejects_duplicates_and_obs_bundles():
    dup = [RunRequest(name="same", source=COUNTER),
           RunRequest(name="same", source=COUNTER)]
    with pytest.raises(BatchError, match="duplicate"):
        run_batch(dup, workers=1)
    wired = RunRequest(
        name="wired", source=COUNTER,
        options=SimOptions(obs=Observability(tracer=Tracer())))
    with pytest.raises(BatchError, match="obs bundle"):
        run_batch([wired], workers=1)
    with pytest.raises(BatchError):
        run_batch([], workers=1)
    with pytest.raises(BatchError):
        run_batch(_mix(), workers=0)


# ---------------------------------------------------------------------------
# determinism: pool width must not be observable in results


def test_one_vs_four_workers_identical_results(tmp_path):
    narrow = run_batch(_mix(), workers=1, out_dir=str(tmp_path / "w1"))
    wide = run_batch(_mix(), workers=4, out_dir=str(tmp_path / "w4"))
    assert [outcome.name for outcome in narrow] == \
        [outcome.name for outcome in wide]
    for left, right in zip(narrow, wide):
        assert left.status is right.status
        # the full result payload — status, output, violations with
        # traces, metrics — must be byte-for-byte independent of the
        # pool width
        assert left.result == right.result
        with open(left.vcd_path, "rb") as a, open(right.vcd_path, "rb") as b:
            assert a.read() == b.read(), f"VCD differs for {left.name}"


def test_streamed_callbacks_cover_every_run(tmp_path):
    seen = []
    batch = run_batch(_mix(), workers=2, out_dir=str(tmp_path),
                      on_result=seen.append)
    assert sorted(outcome.name for outcome in seen) == \
        sorted(outcome.name for outcome in batch)
    assert all(isinstance(outcome, RunOutcome) for outcome in seen)


# ---------------------------------------------------------------------------
# failure isolation: one bad run never kills the batch


def test_abort_hang_and_ok_coexist(tmp_path):
    requests = [
        RunRequest(name="ok", source=COUNTER,
                   options=SimOptions(concrete_random=1)),
        RunRequest(name="starved", source=COUNTER,
                   options=SimOptions(
                       budgets=ResourceBudgets(max_events=3,
                                               max_concretizations=0))),
        RunRequest(name="spinner", source=HANG,
                   options=SimOptions(max_step_activity=200)),
    ]
    batch = run_batch(requests, workers=2, out_dir=str(tmp_path))
    assert len(batch) == 3
    assert batch["ok"].status is SimStatus.OK
    assert batch["starved"].status is SimStatus.ABORTED
    assert batch["starved"].error
    assert batch["spinner"].status is SimStatus.HANG
    assert not batch.ok
    assert batch.counts() == {"ok": 1, "aborted": 1, "hang": 1}
    payload = batch.to_dict()
    assert payload["schema"] == "repro.batch.result/1"
    assert {run["name"] for run in payload["runs"]} == \
        {"ok", "starved", "spinner"}


# ---------------------------------------------------------------------------
# artifacts: merged trace + aggregated metrics


def test_merged_trace_has_one_lane_per_worker(tmp_path):
    batch = run_batch(_mix(), workers=2, out_dir=str(tmp_path))
    assert batch.trace_path and os.path.exists(batch.trace_path)
    with open(batch.trace_path) as handle:
        document = json.load(handle)
    assert document["schema"] == "repro.obs.trace/1"
    pids = {event["pid"] for event in document["traceEvents"]}
    worker_pids = {outcome.worker_pid for outcome in batch}
    assert pids == worker_pids
    names = {event["args"]["name"]
             for event in document["traceEvents"] if event["ph"] == "M"}
    assert names == {f"worker {pid}" for pid in worker_pids}
    spans = [event for event in document["traceEvents"]
             if event.get("ph") == "B" and event["name"].startswith("run:")]
    assert {span["name"] for span in spans} == \
        {f"run:{outcome.name}" for outcome in batch}


def test_aggregated_metrics(tmp_path):
    batch = run_batch(_mix(), workers=1, out_dir=str(tmp_path))
    registry = batch.metrics
    assert registry.get("batch.runs") is not None
    assert registry.get("batch.workers").value == 1
    assert registry.get("batch.designs_compiled").value == 1
    per_run = registry.get("batch.run_events_processed")
    for outcome in batch:
        child = per_run.labels(run=outcome.name)
        assert child.value == outcome.result["metrics"]["events_processed"]
        assert child.value > 0
    with open(batch.metrics_path) as handle:
        assert json.load(handle)["schema"] == "repro.obs.metrics/1"


def test_compile_once_per_unique_design(tmp_path):
    batch = run_batch(_mix(), workers=1, out_dir=str(tmp_path))
    assert batch.designs_compiled == 1


def test_structural_twins_get_distinct_programs():
    """Catalog regression: the compile-once catalog must key designs by
    source *content*, not by structural fingerprint.

    Two designs that differ only in one operator (e.g. a mutant and
    its baseline) have identical net tables and instruction counts; a
    structural fingerprint collides and silently runs one design in
    place of the other.
    """
    plus = """
module tb;
  reg [3:0] x;
  initial begin
    x = 4'd3 + 4'd1;
    $assert(x == 4'd4);
  end
endmodule
"""
    minus = plus.replace("4'd3 + 4'd1", "4'd3 - 4'd1")
    for order in ([("plus", plus), ("minus", minus)],
                  [("minus", minus), ("plus", plus)]):
        batch = run_batch(
            [RunRequest(name=name, source=source)
             for name, source in order],
            workers=1)
        assert batch.designs_compiled == 2
        assert batch["plus"].status is SimStatus.OK
        assert batch["minus"].status is SimStatus.ASSERT_FAILED


# ---------------------------------------------------------------------------
# manifest loading


def test_manifest_roundtrip(tmp_path):
    design = tmp_path / "mini.v"
    design.write_text(COUNTER)
    manifest = tmp_path / "jobs.json"
    manifest.write_text(json.dumps({
        "defaults": {"vcd": True, "until": 200,
                     "options": {"accumulation": "full"}},
        "runs": [
            {"name": "builtin", "design": "gcd",
             "params": {"rounds": 1, "width": 3}, "until": 3000},
            {"name": "from-file", "path": "mini.v",
             "options": {"seed": 7}},
            {"name": "inline", "source": COUNTER,
             "options": {"budget": {"max_events": 100000}}},
        ],
    }))
    requests = load_manifest(str(manifest))
    assert [request.name for request in requests] == \
        ["builtin", "from-file", "inline"]
    builtin, from_file, inline = requests
    assert builtin.top == "gcd_tb"
    assert builtin.until == 3000  # run overrides the default
    assert dict(builtin.defines)["GCD_W"] == "3"
    assert from_file.path == str(design)
    assert from_file.until == 200  # default applies
    assert from_file.vcd is True
    assert from_file.options.concrete_random == 7
    assert inline.options.budgets.max_events == 100000


@pytest.mark.parametrize("document, match", [
    ({"runs": []}, "non-empty"),
    ({}, "runs"),
    ({"runs": [{"design": "gcd"}]}, "name"),
    ({"runs": [{"name": "x"}]}, "exactly one"),
    ({"runs": [{"name": "x", "design": "gcd", "source": "m"}]},
     "exactly one"),
    ({"runs": [{"name": "x", "path": "nope.v"}]}, "not found"),
    ({"runs": [{"name": "x", "design": "nonesuch"}]}, "unknown design"),
    ({"runs": [{"name": "x", "source": "m",
                "options": {"bogus": 1}}]}, "unknown option"),
    ({"runs": [{"name": "x", "source": "m",
                "options": {"accumulation": "sideways"}}]},
     "accumulation"),
])
def test_manifest_rejects_malformed(tmp_path, document, match):
    path = tmp_path / "jobs.json"
    path.write_text(json.dumps(document))
    with pytest.raises(BatchError, match=match):
        load_manifest(str(path))


def test_manifest_rejects_bad_json(tmp_path):
    path = tmp_path / "jobs.json"
    path.write_text("{nope")
    with pytest.raises(BatchError, match="JSON"):
        load_manifest(str(path))
    with pytest.raises(BatchError, match="read"):
        load_manifest(str(tmp_path / "missing.json"))


# ---------------------------------------------------------------------------
# CLI


def _write_manifest(tmp_path, runs):
    path = tmp_path / "jobs.json"
    path.write_text(json.dumps({"runs": runs}))
    return str(path)


def test_cli_batch_ok(tmp_path, capsys):
    from repro.cli import main

    manifest = _write_manifest(tmp_path, [
        {"name": "a", "source": COUNTER, "options": {"seed": 1}},
        {"name": "b", "source": COUNTER, "options": {"seed": 2}},
    ])
    code = main(["batch", manifest, "--workers", "2",
                 "--out-dir", str(tmp_path / "out")])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 runs on 2 workers" in out
    assert "merged chrome trace" in out


def test_cli_batch_exit_codes(tmp_path, capsys):
    from repro.cli import main

    failing = _write_manifest(tmp_path, [
        {"name": "sym", "source": COUNTER},  # symbolic: assert can fail
    ])
    assert main(["batch", failing, "--quiet", "--no-trace",
                 "--out-dir", str(tmp_path / "o1")]) == 1
    hanging = _write_manifest(tmp_path, [
        {"name": "h", "source": HANG,
         "options": {"max_step_activity": 200}},
    ])
    assert main(["batch", hanging, "--quiet", "--no-trace",
                 "--out-dir", str(tmp_path / "o2")]) == 4
    capsys.readouterr()


def test_cli_batch_bad_manifest(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "jobs.json"
    path.write_text("not json")
    assert main(["batch", str(path)]) == 2
    assert "error:" in capsys.readouterr().err
