"""Error-trace extraction and resimulation (Section 5 machinery)."""

import pytest

import repro
from repro.errors import ResimulationError
from repro.sim.trace import build_error_trace
from tests.conftest import run_source


class TestErrorDetection:
    def test_error_statement_immediate(self):
        result, _ = run_source("""
            module tb; reg [3:0] a;
              initial begin
                a = $random;
                if (a == 9) $error("nine");
              end
            endmodule
        """)
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.kind == "$error"
        assert violation.message == "nine"

    def test_error_on_dead_path_not_reported(self):
        result, _ = run_source("""
            module tb; reg [3:0] a;
              initial begin
                a = $random;
                if (a > 15) $error;   // unreachable at 4 bits
              end
            endmodule
        """)
        assert not result.violations

    def test_assert_checked_every_step(self):
        result, _ = run_source("""
            module tb; reg [3:0] n;
              initial begin
                n = 0;
                $assert(n < 5);
                repeat (8) #1 n = n + 1;
              end
            endmodule
        """)
        assert len(result.violations) == 1
        assert result.violations[0].time == 5

    def test_violation_stops_by_default(self):
        result, _ = run_source("""
            module tb; reg [3:0] n;
              initial begin
                n = 0;
                $assert(n != 2);
                repeat (8) #1 n = n + 1;
              end
            endmodule
        """)
        assert result.time == 2  # stopped at first hit

    def test_continue_mode_collects_all(self):
        result, _ = run_source("""
            module tb; reg [3:0] a;
              initial begin
                a = $random;
                if (a == 1) $error("one");
                if (a == 2) $error("two");
              end
            endmodule
        """, stop_on_violation=False)
        assert [v.message for v in result.violations] == ["one", "two"]

    def test_assert_does_not_refire_same_paths(self):
        result, _ = run_source("""
            module tb; reg a;
              initial begin
                a = $random;
                $assert(a == 0);
                #1; #1; #1;
              end
            endmodule
        """, stop_on_violation=False)
        # the a=1 paths violate once, not once per time step
        assert len(result.violations) == 1


class TestTraceContents:
    SRC = """
        module tb; reg [3:0] a, b;
          initial begin
            a = $random;
            #5 b = $random;
            if (a + b == 17) $error;
          end
        endmodule
    """

    def test_witness_satisfies_condition(self):
        result, sim = run_source(self.SRC)
        violation = result.violations[0]
        trace = violation.trace
        assert sim.mgr.eval(violation.condition, trace.witness)

    def test_invocation_times_recorded(self):
        result, _ = run_source(self.SRC)
        entries = result.violations[0].trace.entries
        assert entries[0].time == 0
        assert entries[1].time == 5

    def test_values_sum_to_trigger(self):
        result, _ = run_source(self.SRC)
        entries = result.violations[0].trace.entries
        total = sum(int(e.value, 2) for e in entries if e.executed)
        assert total == 17

    def test_describe_readable(self):
        result, _ = run_source(self.SRC)
        text = str(result.violations[0])
        assert "$error" in text
        assert "t=0" in text and "t=5" in text

    def test_callsite_values_grouping(self):
        result, _ = run_source(self.SRC)
        values = result.violations[0].trace.callsite_values()
        assert set(values) == {0, 1}
        assert len(values[0]) == 1 and len(values[1]) == 1


class TestResimulation:
    def test_resim_reproduces_assert(self):
        result, sim = run_source("""
            module tb; reg [3:0] a; reg [4:0] s;
              initial begin
                a = $random;
                s = a + 3;
                $assert(s != 12);
              end
            endmodule
        """)
        concrete = sim.resimulate(result.violations[0])
        assert concrete.violations
        assert concrete.value("a").to_int() == 9

    def test_resim_is_concrete(self):
        result, sim = run_source("""
            module tb; reg [3:0] a;
              initial begin
                a = $random;
                if (a == 5) $error;
              end
            endmodule
        """)
        concrete = sim.resimulate(result.violations[0])
        assert concrete.kernel.is_concrete
        assert concrete.kernel.mgr.var_count == 0

    def test_resim_through_clocked_design(self):
        result, sim = run_source("""
            module tb; reg clk; reg [3:0] d, q;
              initial begin
                clk = 0;
                $assert(q != 11);
                repeat (6) begin
                  d = $random;
                  #5 clk = 1;
                  #5 clk = 0;
                end
                $finish;
              end
              always @(posedge clk) q <= d;
            endmodule
        """)
        assert result.violations
        concrete = sim.resimulate(result.violations[0], until=200)
        assert concrete.violations

    def test_resim_non_violating_trace(self):
        # expect_violation=False allows replaying arbitrary traces
        from repro.sim.trace import ErrorTrace, TraceEntry

        sim = repro.open_sim("""
            module tb; reg [3:0] a;
              initial begin
                a = $random;
                if (a == 2) $error;
              end
            endmodule
        """)
        trace = ErrorTrace(witness={}, entries=[
            TraceEntry(callsite_index=0, where="tb:4", seq=0, time=0,
                       executed=True, value="0001"),
        ])
        concrete = sim.resimulate(trace, expect_violation=False)
        assert not concrete.violations
        assert concrete.value("a").to_int() == 1

    def test_resim_value_exhaustion_raises(self):
        from repro.sim.trace import ErrorTrace

        sim = repro.open_sim("""
            module tb; reg [3:0] a;
              initial a = $random;
            endmodule
        """)
        empty = ErrorTrace(witness={}, entries=[])
        with pytest.raises(ResimulationError):
            sim.resimulate(empty, expect_violation=False)

    def test_resim_missing_violation_raises(self):
        result, sim = run_source("""
            module tb; reg [3:0] a;
              initial begin
                a = $random;
                if (a == 3) $error;
              end
            endmodule
        """)
        trace = result.violations[0].trace
        # corrupt the trace so the replay cannot trigger
        for entry in trace.entries:
            entry.value = "0000"
        with pytest.raises(ResimulationError):
            sim.resimulate(trace)

    def test_unsatisfiable_condition_rejected(self):
        from repro.bdd import FALSE, BddManager

        with pytest.raises(ValueError):
            build_error_trace(BddManager(), FALSE, [], {})


class TestFourValuedTraces:
    def test_randomxz_trace_carries_xz(self):
        result, sim = run_source("""
            module tb; reg [1:0] a;
              initial begin
                a = $randomxz;
                if (a === 2'b1z) $error;
              end
            endmodule
        """)
        assert result.violations
        entry = result.violations[0].trace.entries[0]
        assert entry.value == "1z"
        concrete = sim.resimulate(result.violations[0])
        assert concrete.violations
