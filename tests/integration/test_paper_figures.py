"""The paper's worked examples, reproduced as executable tests.

Each test corresponds to a specific figure or section of
Kölbl/Kukula/Damiano, DAC 2001.
"""

import itertools

import pytest

from repro import AccumulationMode, SimOptions
from repro.bdd import FALSE, TRUE
from tests.conftest import run_source


class TestFigure1:
    """Section 3.2's symbolic execution walk-through.

    After the if-statement, the paper derives ``b = s_a + s_b`` (OR)
    for 1-bit registers.
    """

    SRC = """
        module tb;
          reg a, b;
          initial begin
            a = $random;
            b = 0;
            if (a == 0) begin
              b = $random;
            end else begin
              b = 1;
            end
            #5;
          end
        endmodule
    """

    def test_final_b_is_or_of_symbols(self):
        result, sim = run_source(self.SRC)
        mgr = sim.mgr
        b = sim.value("b")
        s_a, s_b = mgr.var(0), mgr.var(1)
        assert b.bits[0][0] == mgr.or_(s_a, s_b)
        assert b.bits[0][1] == FALSE  # never X/Z

    def test_intermediate_then_branch_value(self):
        # The then-branch assignment gives b = !s_a & s_b before the
        # else branch ORs in s_a — verify via cofactors of the result.
        result, sim = run_source(self.SRC)
        mgr = sim.mgr
        b = sim.value("b").bits[0][0]
        assert mgr.restrict(b, 0, False) == mgr.var(1)  # a=0: b = s_b
        assert mgr.restrict(b, 0, True) == TRUE         # a!=0: b = 1


class TestFigure2And9:
    """Delays inside both branches of a symbolic if (Fig. 2 scheme)."""

    def test_both_branches_with_delays_execute(self):
        result, sim = run_source("""
            module tb; reg a; reg [3:0] t_then, t_else;
              initial begin
                a = $random;
                t_then = 0; t_else = 0;
                if (a) begin
                  #3 t_then = $time;
                end
                else begin
                  #7 t_else = $time;
                end
              end
            endmodule
        """)
        t_then = sim.value("t_then")
        t_else = sim.value("t_else")
        assert t_then.substitute({0: True}).to_int() == 3
        assert t_then.substitute({0: False}).to_int() == 0
        assert t_else.substitute({0: False}).to_int() == 7
        assert t_else.substitute({0: True}).to_int() == 0


class TestFigure4MergeInFuture:
    """Balanced delays in both branches merge 5 time units later."""

    SRC = """
        module tb; reg a; reg [7:0] joins;
          initial begin
            joins = 0;
            a = $random;
            if (a == 0) begin
              #5 joins = joins + 1;
            end
            else begin
              #5 joins = joins + 1;
            end
            joins = joins + 10;   // after the join
          end
        endmodule
    """

    def test_joined_code_runs_once_per_path(self):
        for mode in AccumulationMode:
            result, sim = run_source(self.SRC, accumulation=mode)
            joins = sim.value("joins")
            for value in (True, False):
                assert joins.substitute({0: value}).to_int() == 11

    def test_accumulation_merges_the_paths(self):
        result, sim = run_source(self.SRC,
                                 accumulation=AccumulationMode.FULL)
        assert result.stats.events_merged > 0


class TestFigure5PartialMerge:
    """Three paths; only the two with equal total delay can merge."""

    SRC = """
        module tb; reg [1:0] a, b; reg [7:0] arrived2, arrived5;
          initial begin
            arrived2 = 0; arrived5 = 0;
            a = $random; b = $random;
            if (a == 0) begin
              if (b != 0) begin
                #2 arrived2 = $time;
              end
              else begin
                #5 arrived5 = $time;
              end
            end
            else begin
              #5 arrived5 = $time;
            end
          end
        endmodule
    """

    def test_path_timing(self):
        result, sim = run_source(self.SRC)
        arrived2 = sim.value("arrived2")
        arrived5 = sim.value("arrived5")
        # a == 0, b != 0 -> the 2-unit path
        cube = {0: False, 1: False, 2: True, 3: False}
        assert arrived2.substitute(cube).to_int() == 2
        assert arrived5.substitute(cube).to_int() == 0
        # a == 0, b == 0 -> 5-unit path
        cube = {0: False, 1: False, 2: False, 3: False}
        assert arrived5.substitute(cube).to_int() == 5
        # a != 0 -> 5-unit path
        cube = {0: True, 1: False, 2: False, 3: False}
        assert arrived5.substitute(cube).to_int() == 5

    def test_balanced_paths_merge(self):
        result, sim = run_source(self.SRC,
                                 accumulation=AccumulationMode.FULL)
        assert result.stats.events_merged > 0


class TestFigure6MergeInDifferentStatement:
    """Paths split by one if merge inside a *different* statement."""

    def test_delayed_paths_rebalance(self):
        result, sim = run_source("""
            module tb; reg a; reg [7:0] after1, after2;
              initial begin
                after1 = 0; after2 = 0;
                a = $random;
                if (a == 0) begin
                  #2 after1 = $time;
                end
                if (a != 0) begin
                  #2 after2 = $time;
                end
                // both paths have total delay 2 here
                if ($time !== 2) $error;
              end
            endmodule
        """)
        assert not result.violations
        assert sim.value("after1").substitute({0: False}).to_int() == 2
        assert sim.value("after2").substitute({0: True}).to_int() == 2


class TestFigure7MergeInLoop:
    """An always-loop with unbalanced branch delays re-merges across
    iterations (delays 2 vs 4: paths align every other round)."""

    SRC = """
        module tb; reg a; reg [7:0] beats;
          initial begin
            beats = 0;
            a = $random;
            #21 $finish;
          end
          always begin
            if (a == 0) begin
              #2;
            end
            else begin
              #4;
            end
            beats = beats + 1;
          end
        endmodule
    """

    def test_iteration_counts_per_path(self):
        result, sim = run_source(self.SRC)
        beats = sim.value("beats")
        assert beats.substitute({0: False}).to_int() == 10  # every 2
        assert beats.substitute({0: True}).to_int() == 5    # every 4

    def test_accumulation_prevents_double_execution(self):
        # With only two paths the accumulation *events* outnumber the
        # savings, but the statements executed (the real cost driver,
        # every execution is a BDD operation) must not multiply.
        full, _ = run_source(self.SRC, accumulation=AccumulationMode.FULL)
        none, _ = run_source(self.SRC, accumulation=AccumulationMode.NONE)
        assert full.stats.instructions < none.stats.instructions

    def test_event_multiplication_without_accumulation(self):
        # A fresh split every iteration: paths double without merging
        # ("event multiplication", Section 4), stay bounded with it.
        src = """
            module tb; reg v; integer k;
              initial begin
                for (k = 0; k < 5; k = k + 1) begin
                  v = $random;
                  if (v) begin #2; end
                  else begin #2; end
                end
              end
            endmodule
        """
        full, _ = run_source(src, accumulation=AccumulationMode.FULL)
        none, _ = run_source(src, accumulation=AccumulationMode.NONE)
        assert none.stats.events_processed > 4 * full.stats.events_processed


class TestFigure10ErrorTraces:
    """Section 5's data-dependent loop with conditional $random."""

    SRC = """
        module tb;
          reg [1:0] a;
          reg [2:0] b;
          reg [4:0] c;
          integer i;
          initial begin
            a = $random;
            c = 0;
            for (i = 0; i <= a; i = i + 1) begin
              if (a != i + 1) begin
                b = $random;
                c = c + b;
              end
            end
            $assert(c < 20);
          end
        endmodule
    """

    def test_violation_found(self):
        result, _ = run_source(self.SRC)
        assert len(result.violations) == 1
        assert result.violations[0].kind == "$assert"

    def test_trace_interleaves_executed_and_skipped(self):
        """The paper stresses that executed / not-executed entries can
        intermix, so resimulation must filter by control first."""
        result, _ = run_source(self.SRC)
        trace = result.violations[0].trace
        b_entries = [e for e in trace.entries if e.seq >= 0 and
                     e.callsite_index == 1]
        # loop ran a+1 times; the symbolic run logs one invocation per
        # dynamic execution with a satisfiable control
        assert len(b_entries) >= 2

    def test_resimulation_reproduces(self):
        result, sim = run_source(self.SRC)
        concrete = sim.resimulate(result.violations[0])
        assert concrete.violations
        assert concrete.value("c").to_int() >= 20

    def test_all_traces_resimulate(self):
        """Every satisfying assignment of the violation must replay."""
        result, sim = run_source(self.SRC)
        violation = result.violations[0]
        mgr = sim.mgr
        from repro.sim.trace import build_error_trace

        where = {c.index: c.where for c in sim.program.callsites}
        count = 0
        for cube in itertools.islice(
            mgr.all_sat(violation.condition), 0, 5
        ):
            trace = build_error_trace(mgr, violation.condition,
                                      sim.kernel.random_log, where)
            # build_error_trace picks sat_one; emulate per-cube traces
            # by substituting this cube instead
            from repro.sim.trace import ErrorTrace, TraceEntry, _concretize

            entries = []
            for inv in sim.kernel.random_log:
                executed = mgr.eval(inv.control, cube)
                value = _concretize(mgr, inv.vector, cube) if executed else None
                entries.append(TraceEntry(
                    callsite_index=inv.callsite_index,
                    where=where.get(inv.callsite_index, "?"),
                    seq=inv.seq, time=inv.time, executed=executed,
                    value=value))
            per_cube = ErrorTrace(witness=dict(cube), entries=entries)
            concrete = sim.resimulate(per_cube)
            assert concrete.violations
            count += 1
        assert count > 0


class TestSection7Shape:
    """The headline result's *shape*: symbolic finds the planted MCU bug
    while random simulation with the same budget does not."""

    def test_symbolic_finds_bug_random_does_not(self):
        import repro
        from repro.designs import load

        src, top, defines = load("mcu8", runtime=100)
        sim = repro.open_sim(src, top=top,
                                                  defines=defines)
        result = sim.run(until=200)
        assert result.violations, "symbolic simulation must hit the bug"

        # random baseline: same testbench, concrete $random, many seeds
        for seed in range(5):
            rsim = repro.open_sim(
                src, top=top, defines=defines,
                options=SimOptions(concrete_random=seed))
            rresult = rsim.run(until=200)
            assert not rresult.violations, \
                f"random sim should not stumble on the bug (seed {seed})"

    def test_bug_trace_resimulates(self):
        import repro
        from repro.designs import load

        src, top, defines = load("mcu8", runtime=100)
        sim = repro.open_sim(src, top=top,
                                                  defines=defines)
        result = sim.run(until=200)
        concrete = sim.resimulate(result.violations[0], until=200)
        assert concrete.violations
