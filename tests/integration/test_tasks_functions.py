"""User tasks (inlined, with delays) and functions (pure inline)."""

import pytest

from repro.errors import CompileError
from tests.conftest import run_source


class TestFunctions:
    def test_simple_function(self):
        result, sim = run_source("""
            module tb; reg [7:0] y;
              function [7:0] square;
                input [7:0] v;
                square = v * v;
              endfunction
              initial y = square(9);
            endmodule
        """)
        assert sim.value("y").to_int() == 81

    def test_function_with_control_flow(self):
        result, sim = run_source("""
            module tb; reg [7:0] y1, y2;
              function [7:0] clamp;
                input [7:0] v;
                input [7:0] hi;
                begin
                  if (v > hi) clamp = hi;
                  else clamp = v;
                end
              endfunction
              initial begin
                y1 = clamp(200, 100);
                y2 = clamp(30, 100);
              end
            endmodule
        """)
        assert sim.value("y1").to_int() == 100
        assert sim.value("y2").to_int() == 30

    def test_function_with_loop(self):
        result, sim = run_source("""
            module tb; reg [7:0] y;
              function [7:0] popcount;
                input [7:0] v;
                integer i;
                begin
                  popcount = 0;
                  for (i = 0; i < 8; i = i + 1)
                    popcount = popcount + v[i];
                end
              endfunction
              initial y = popcount(8'b1011_0110);
            endmodule
        """)
        assert sim.value("y").to_int() == 5

    def test_function_on_symbolic_data(self):
        result, _ = run_source("""
            module tb; reg [3:0] a;
              function [3:0] twice;
                input [3:0] v;
                twice = v + v;
              endfunction
              initial begin
                a = $random;
                if (twice(a) !== ((a + a) & 4'hF)) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_nested_function_calls(self):
        result, sim = run_source("""
            module tb; reg [7:0] y;
              function [7:0] inc;
                input [7:0] v;
                inc = v + 1;
              endfunction
              function [7:0] inc3;
                input [7:0] v;
                inc3 = inc(inc(inc(v)));
              endfunction
              initial y = inc3(10);
            endmodule
        """)
        assert sim.value("y").to_int() == 13

    def test_disable_as_function_return(self):
        result, sim = run_source("""
            module tb; reg [7:0] y;
              function [7:0] first_set_bit;
                input [7:0] v;
                integer i;
                begin
                  first_set_bit = 8'hFF;
                  for (i = 0; i < 8; i = i + 1)
                    if (v[i] && first_set_bit == 8'hFF) begin
                      first_set_bit = i;
                      disable first_set_bit;
                    end
                end
              endfunction
              initial y = first_set_bit(8'b0110_0000);
            endmodule
        """)
        assert sim.value("y").to_int() == 5

    def test_function_delay_rejected(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb;
                  function f; input v; begin #1 f = v; end endfunction
                  initial $display("%d", f(1));
                endmodule
            """)

    def test_recursive_function_rejected(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb;
                  function f; input v; f = f(v); endfunction
                  initial $display("%d", f(1));
                endmodule
            """)

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb;
                  function f; input a; input b; f = a & b; endfunction
                  initial $display("%d", f(1));
                endmodule
            """)


class TestTasks:
    def test_task_with_delays(self):
        result, _ = run_source("""
            module tb; reg clk;
              task tick; begin #5 clk = 1; #5 clk = 0; end endtask
              initial begin
                clk = 0;
                tick;
                tick;
                if ($time !== 20) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_task_output_argument(self):
        result, sim = run_source("""
            module tb; reg [7:0] q, r;
              task divmod10;
                input [7:0] v;
                output [7:0] quo;
                output [7:0] rem;
                begin
                  quo = v / 10;
                  rem = v % 10;
                end
              endtask
              initial divmod10(87, q, r);
            endmodule
        """)
        assert sim.value("q").to_int() == 8
        assert sim.value("r").to_int() == 7

    def test_task_inout_argument(self):
        result, sim = run_source("""
            module tb; reg [7:0] v;
              task double; inout [7:0] x; x = x * 2; endtask
              initial begin
                v = 5;
                double(v);
                double(v);
              end
            endmodule
        """)
        assert sim.value("v").to_int() == 20

    def test_task_locals_are_static(self):
        result, sim = run_source("""
            module tb; reg [7:0] calls;
              task bump;
                begin
                  calls = calls + 1;
                end
              endtask
              initial begin
                calls = 0;
                bump; bump; bump;
              end
            endmodule
        """)
        assert sim.value("calls").to_int() == 3

    def test_task_with_event_control(self):
        result, _ = run_source("""
            module tb; reg clk;
              task wait_edge; @(posedge clk); endtask
              initial begin
                clk = 0;
                #3 clk = 1;
              end
              initial begin
                wait_edge;
                if ($time !== 3) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_disable_task_returns_early(self):
        result, sim = run_source("""
            module tb; reg [7:0] mark;
              task work;
                input stop_early;
                begin
                  mark = 1;
                  if (stop_early) disable work;
                  mark = 2;
                end
              endtask
              initial begin
                work(1);
              end
            endmodule
        """)
        assert sim.value("mark").to_int() == 1

    def test_recursive_task_rejected(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb;
                  task t; t; endtask
                  initial t;
                endmodule
            """)

    def test_unknown_task_rejected(self):
        with pytest.raises(CompileError):
            run_source("module tb; initial nothere(1); endmodule")

    def test_task_symbolic_argument(self):
        result, _ = run_source("""
            module tb; reg [3:0] a, y;
              task addsat;
                input [3:0] x;
                output [3:0] out;
                begin
                  if (x > 12) out = 15;
                  else out = x + 3;
                end
              endtask
              initial begin
                a = $random;
                addsat(a, y);
                if (a > 12) begin
                  if (y !== 15) $error;
                end
                else begin
                  if (y !== ((a + 3) & 4'hF)) $error;
                end
              end
            endmodule
        """)
        assert not result.violations
