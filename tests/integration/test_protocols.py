"""Multi-cycle protocol scenarios: temporal symbolic behavior."""

import itertools

import pytest

from repro import analysis
from tests.conftest import run_source


class TestShiftProtocols:
    def test_serial_shift_in(self):
        """An SPI-style receiver assembles symbolic serial bits."""
        result, sim = run_source("""
            module tb; reg sck; reg mosi; reg [3:0] sr; integer i;
              reg [3:0] bits;
              initial begin
                sck = 0; sr = 0;
                bits = $random;
                for (i = 3; i >= 0; i = i - 1) begin
                  mosi = bits[i];
                  #2 sck = 1;
                  #2 sck = 0;
                end
                if (sr !== bits) $error;
                $finish;
              end
              always @(posedge sck) sr = {sr[2:0], mosi};
            endmodule
        """)
        assert not result.violations

    def test_serial_shift_out_matches(self):
        result, _ = run_source("""
            module tb; reg sck; reg [3:0] data; reg [3:0] rebuilt;
              reg miso; integer i;
              initial begin
                sck = 0;
                data = $random;
                rebuilt = 0;
                for (i = 3; i >= 0; i = i - 1) begin
                  miso = data[i];
                  #2 rebuilt = {rebuilt[2:0], miso};
                end
                if (rebuilt !== data) $error;
              end
            endmodule
        """)
        assert not result.violations


class TestCountersAndState:
    def test_gated_counter_counts_enables(self):
        result, sim = run_source("""
            module tb; reg clk, en; reg [2:0] ens; reg [3:0] count;
              integer i;
              initial begin
                clk = 0; count = 0;
                ens = $random;
                for (i = 0; i < 3; i = i + 1) begin
                  en = ens[i];
                  #2 clk = 1;
                  #2 clk = 0;
                end
                $finish;
              end
              always @(posedge clk) if (en) count <= count + 1;
            endmodule
        """)
        count = sim.value("count")
        for bits in itertools.product([False, True], repeat=3):
            expected = sum(bits)
            assert count.substitute(dict(enumerate(bits))).to_int() \
                == expected

    def test_fsm_reachability(self):
        """State machine over symbolic inputs: analysis finds exactly
        the reachable states after 2 steps."""
        result, sim = run_source("""
            module tb; reg clk; reg [1:0] state; reg go;
              reg [1:0] inputs;
              integer i;
              initial begin
                clk = 0; state = 0;
                inputs = $random;
                for (i = 0; i < 2; i = i + 1) begin
                  go = inputs[i];
                  #2 clk = 1;
                  #2 clk = 0;
                end
                $finish;
              end
              // 0 -go-> 1 -go-> 3 ; any state -!go-> 0
              always @(posedge clk) begin
                case (state)
                  2'd0: state <= go ? 2'd1 : 2'd0;
                  2'd1: state <= go ? 2'd3 : 2'd0;
                  2'd3: state <= go ? 2'd3 : 2'd0;
                  default: state <= 2'd0;
                endcase
              end
            endmodule
        """)
        reachable = sorted(analysis.reachable_values(sim, "state"))
        # after exactly two steps: 00 (a !go), 01 (go after !go... -> 1),
        # 11 (go,go); state 2 must be unreachable
        assert reachable == ["00", "01", "11"]
        assert not analysis.can_reach(sim, "state", 2)

    def test_saturation_counter(self):
        result, sim = run_source("""
            module tb; reg [2:0] bumps; reg [1:0] level; integer i;
              initial begin
                level = 0;
                bumps = $random;
                for (i = 0; i < 3; i = i + 1) begin
                  if (bumps[i] && level != 2'd3) level = level + 1;
                end
              end
            endmodule
        """)
        # level counts set bits (saturating at 3): values 0..3 reachable
        values = sorted(analysis.reachable_values(sim, "level"))
        assert values == ["00", "01", "10", "11"]
        histogram = analysis.value_histogram(sim, "level")
        assert histogram["11"] == 1   # only the all-three-bumps stimulus
        assert histogram["00"] == 1   # only the no-bumps stimulus
        assert sum(histogram.values()) == 8


class TestRequestGrantChains:
    def test_two_stage_pipeline_backpressure(self):
        result, _ = run_source("""
            module tb;
              reg clk;
              reg in_valid; wire in_ready;
              reg s1_valid; reg [3:0] s1_data;
              reg out_ready;
              reg [3:0] in_data;
              reg [2:0] readies; reg [3:0] sent;
              integer i;

              assign in_ready = !s1_valid || out_ready;

              initial begin
                clk = 0; s1_valid = 0; in_valid = 1; sent = 0;
                readies = $random;
                in_data = 4'd5;
                for (i = 0; i < 3; i = i + 1) begin
                  out_ready = readies[i];
                  #2 clk = 1;
                  #2 clk = 0;
                end
                $finish;
              end

              always @(posedge clk) begin
                if (out_ready && s1_valid) begin
                  s1_valid <= in_valid;
                  if (in_valid) s1_data <= in_data;
                  sent <= sent + 1;
                end
                else if (!s1_valid && in_valid) begin
                  s1_valid <= 1;
                  s1_data <= in_data;
                end
              end

              // invariant: data never corrupts while stalled
              always @(negedge clk) begin
                if (s1_valid && s1_data !== 4'd5) $error;
              end
            endmodule
        """)
        assert not result.violations
