"""Event-accumulation behavior across the three Table-1 levels."""

import itertools

import pytest

from repro import AccumulationMode, SimOptions
from tests.conftest import run_source

SPLIT_CHAIN = """
    module tb; reg v; reg [7:0] n; integer k;
      initial begin
        n = 0;
        for (k = 0; k < %d; k = k + 1) begin
          v = $random;
          if (v) begin #2 n = n + 1; end
          else begin #2 n = n + 2; end
        end
      end
    endmodule
"""


class TestSemanticsIndependentOfMode:
    def test_all_modes_agree_on_final_values(self):
        # Unmerged paths re-execute $random and own *different* fresh
        # variables, so compare the set of reachable final values, not
        # per-variable cofactors.
        from repro.bdd import FALSE
        from repro.fourval import FourVec, ops

        results = {}
        for mode in AccumulationMode:
            _, sim = run_source(SPLIT_CHAIN % 4, accumulation=mode)
            n = sim.value("n")
            reachable = set()
            for candidate in range(16):
                eq = ops.equal(
                    n, FourVec.from_int(sim.mgr, candidate, n.width)
                ).truthy()
                if eq != FALSE:
                    reachable.add(candidate)
            results[mode] = reachable
        # 4 iterations of +1/+2: totals 4..8 are exactly reachable
        assert results[AccumulationMode.FULL] == {4, 5, 6, 7, 8}
        assert results[AccumulationMode.FULL] == results[AccumulationMode.NONE]
        assert results[AccumulationMode.FULL] == \
            results[AccumulationMode.QUEUE_MERGE_ONLY]

    def test_all_modes_agree_on_violations(self):
        src = """
            module tb; reg [3:0] a;
              initial begin
                a = $random;
                if (a[0]) begin #1; end
                else begin #1; end
                if (a == 13) $error;
              end
            endmodule
        """
        for mode in AccumulationMode:
            result, _ = run_source(src, accumulation=mode)
            assert len(result.violations) == 1, mode


class TestEventCounts:
    def test_exponential_growth_without_accumulation(self):
        depth = 6
        counts = {}
        for mode in AccumulationMode:
            result, _ = run_source(SPLIT_CHAIN % depth, accumulation=mode)
            counts[mode] = result.stats.events_processed
        # NONE multiplies paths: far more events than FULL
        assert counts[AccumulationMode.NONE] > \
            4 * counts[AccumulationMode.FULL]
        # queue merging alone already prevents the blow-up here
        assert counts[AccumulationMode.QUEUE_MERGE_ONLY] < \
            counts[AccumulationMode.NONE]

    def test_merged_counter_only_with_merging(self):
        for mode, expect_merges in [
            (AccumulationMode.FULL, True),
            (AccumulationMode.NONE, False),
        ]:
            result, _ = run_source(SPLIT_CHAIN % 3, accumulation=mode)
            assert (result.stats.events_merged > 0) == expect_merges

    def test_concrete_design_insensitive_to_mode(self):
        """No symbolic control flow -> all modes process identically
        (the paper's DRAM row: 37s / 37s / 37s)."""
        src = """
            module tb; reg [7:0] a, b; reg [8:0] s; integer k;
              initial begin
                a = $random; b = $random;   // data, never control
                s = 0;
                for (k = 0; k < 8; k = k + 1) begin
                  #3 s = a + b;
                end
              end
            endmodule
        """
        counts = set()
        for mode in AccumulationMode:
            result, _ = run_source(src, accumulation=mode)
            counts.add(result.stats.events_processed)
        assert len(counts) == 1

    def test_accumulation_events_skipped_for_concrete_control(self):
        """Concrete branches take the fast path: no join events at all."""
        src = """
            module tb; reg [3:0] y; integer k;
              initial begin
                for (k = 0; k < 10; k = k + 1) begin
                  if (k[0]) y = 1;
                  else y = 2;
                end
              end
            endmodule
        """
        full, _ = run_source(src, accumulation=AccumulationMode.FULL)
        none, _ = run_source(src, accumulation=AccumulationMode.NONE)
        assert full.stats.events_processed == none.stats.events_processed


class TestPriorityDiscipline:
    def test_nested_splits_merge_inner_first(self):
        """Depth-first processing: inner split paths must merge before
        the outer statement's accumulation events run, so the code after
        the outer endif executes with the fully recombined control."""
        result, sim = run_source("""
            module tb; reg a, b; reg [7:0] runs;
              initial begin
                runs = 0;
                a = $random; b = $random;
                if (a) begin
                  if (b) begin #0; end
                  else begin #0; end
                end
                else begin
                  if (b) begin #0; end
                  else begin #0; end
                end
                runs = runs + 1;   // once per surviving path
              end
            endmodule
        """, accumulation=AccumulationMode.FULL)
        runs = sim.value("runs")
        for va, vb in itertools.product([False, True], repeat=2):
            assert runs.substitute({0: va, 1: vb}).to_int() == 1

    def test_priority_restored_after_join(self):
        # a split inside a loop must not leak priority across iterations
        result, sim = run_source("""
            module tb; reg [3:0] v; integer k; reg [7:0] n;
              initial begin
                n = 0;
                v = $random;
                for (k = 0; k < 3; k = k + 1) begin
                  if (v[0]) begin #1; end
                  else begin #1; end
                  n = n + 1;
                end
              end
            endmodule
        """, accumulation=AccumulationMode.FULL)
        n = sim.value("n")
        for bits in itertools.product([False, True], repeat=4):
            assert n.substitute(dict(enumerate(bits))).to_int() == 3
