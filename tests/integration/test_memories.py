"""Memory (array) semantics: concrete and symbolic indexing."""

import itertools

import pytest

from tests.conftest import run_source


class TestConcreteMemories:
    def test_write_read_roundtrip(self):
        result, _ = run_source("""
            module tb; reg [7:0] mem [0:7]; integer i;
              initial begin
                for (i = 0; i < 8; i = i + 1) mem[i] = i * i;
                for (i = 0; i < 8; i = i + 1)
                  if (mem[i] !== i * i) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_unwritten_word_is_x(self):
        result, _ = run_source("""
            module tb; reg [7:0] mem [0:7];
              initial begin
                mem[0] = 1;
                if (mem[5] !== 8'hxx) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_out_of_range_read_is_x(self):
        result, _ = run_source("""
            module tb; reg [3:0] mem [0:3];
              initial begin
                mem[0] = 0; mem[1] = 1; mem[2] = 2; mem[3] = 3;
                if (mem[9] !== 4'hx) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_out_of_range_write_lost(self):
        result, _ = run_source("""
            module tb; reg [3:0] mem [0:3];
              initial begin
                mem[2] = 7;
                mem[9] = 5;      // vanishes
                if (mem[2] !== 7) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_nonzero_base_range(self):
        result, _ = run_source("""
            module tb; reg [3:0] mem [4:7];
              initial begin
                mem[4] = 1; mem[7] = 2;
                if (mem[4] !== 1 || mem[7] !== 2) $error;
                if (mem[0] !== 4'hx) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_memory_word_in_expression(self):
        result, sim = run_source("""
            module tb; reg [7:0] mem [0:3]; reg [7:0] y;
              initial begin
                mem[1] = 10; mem[2] = 20;
                y = mem[1] + mem[2];
              end
            endmodule
        """)
        assert sim.value("y").to_int() == 30


class TestSymbolicMemories:
    def test_symbolic_address_read(self):
        result, sim = run_source("""
            module tb; reg [7:0] mem [0:3]; reg [1:0] a; reg [7:0] y;
              initial begin
                mem[0] = 5; mem[1] = 6; mem[2] = 7; mem[3] = 8;
                a = $random;
                y = mem[a];
              end
            endmodule
        """)
        y = sim.value("y")
        for v0, v1 in itertools.product([False, True], repeat=2):
            addr = (2 if v1 else 0) + (1 if v0 else 0)
            assert y.substitute({0: v0, 1: v1}).to_int() == 5 + addr

    def test_symbolic_address_write(self):
        result, sim = run_source("""
            module tb; reg [7:0] mem [0:3]; reg [1:0] a; reg [7:0] y0, y3;
              initial begin
                mem[0] = 0; mem[1] = 0; mem[2] = 0; mem[3] = 0;
                a = $random;
                mem[a] = 8'hEE;
                y0 = mem[0];
                y3 = mem[3];
              end
            endmodule
        """)
        y0 = sim.value("y0")
        assert y0.substitute({0: False, 1: False}).to_int() == 0xEE
        assert y0.substitute({0: True, 1: False}).to_int() == 0
        y3 = sim.value("y3")
        assert y3.substitute({0: True, 1: True}).to_int() == 0xEE
        assert y3.substitute({0: False, 1: True}).to_int() == 0

    def test_symbolic_write_then_symbolic_read(self):
        result, _ = run_source("""
            module tb; reg [7:0] mem [0:3]; reg [1:0] a; reg [7:0] d;
              initial begin
                a = $random;
                d = $random;
                mem[a] = d;
                if (mem[a] !== d) $error;   // must hold on every path
              end
            endmodule
        """)
        assert not result.violations

    def test_memory_change_wakes_waiter(self):
        result, _ = run_source("""
            module tb; reg [7:0] mem [0:3]; reg [3:0] hits; wire [7:0] w0;
              assign w0 = mem[0];
              initial begin
                hits = 0;
                #1 mem[0] = 1;
                #1 mem[0] = 1;    // no change
                #1 mem[0] = 2;
                #1;
                if (hits !== 2) $error;
              end
              always @(w0) hits = hits + 1;
            endmodule
        """)
        assert not result.violations

    def test_x_address_write_vanishes(self):
        result, _ = run_source("""
            module tb; reg [7:0] mem [0:3]; reg [1:0] a;
              initial begin
                mem[1] = 7;
                // a is never assigned: all-x address
                mem[a] = 8'hFF;
                if (mem[1] !== 7) $error;
              end
            endmodule
        """)
        assert not result.violations
