"""Metamorphic properties of the mutation operators.

Two relations pin the operators' *semantics* rather than their AST
plumbing:

1. **Observability** — for every operator, at least one mutant of the
   workhorse design produces a different VCD waveform than the
   baseline under the same concrete stimulus.  Mutants whose waveform
   is identical are *potentially equivalent*: allowed, but they must
   be the exception, never the whole population.
2. **Involution** — operators declared as involutions (``opswap``,
   ``cmpswap``, ``nbaswap``) applied twice at the same site round-trip
   to the byte-identical baseline source; ``const`` (off-by-one) is
   explicitly NOT an involution and must not round-trip.

The stimulus is fully concrete (no ``$random``), so waveforms are
exact and the comparison is a plain byte diff of the VCD bodies.
"""

from __future__ import annotations

import pytest

import repro
from repro.frontend.parser import parse_source
from repro.frontend.printer import print_modules
from repro.mutate import OPERATORS, apply_site, build_plan
from repro.sim import SimOptions

# Every operator has sites here: comparisons (<, ==), swappable
# arithmetic/logic (+, -, &, |), perturbable constants, and a blocking
# read-after-nonblocking-write chain (t1 -> q) that makes nbaswap
# observable in the same time step.
SOURCE = """
module mdut(clk, x, y, q, r);
  input clk;
  input [3:0] x, y;
  output reg [4:0] q;
  output reg r;
  reg [3:0] acc;
  reg [3:0] t1;

  initial begin
    acc = 4'd0;
    t1 = 4'd0;
    q = 5'd0;
    r = 1'b0;
  end

  always @(posedge clk) begin
    t1 <= x + 4'd1;
    if (x < y) q <= {1'b0, t1} + {1'b0, y};
    else q <= {1'b0, t1} - {1'b0, y};
    acc = (x & y) | (acc + 4'd1);
    r <= (acc == 4'd7);
  end
endmodule

module mtb;
  reg clk;
  reg [3:0] x, y;
  wire [4:0] q;
  wire r;
  mdut u(.clk(clk), .x(x), .y(y), .q(q), .r(r));
  initial begin
    clk = 0;
    x = 4'd3; y = 4'd9;
    #1 clk = 1; #1 clk = 0;
    x = 4'd12; y = 4'd5;
    #1 clk = 1; #1 clk = 0;
    x = 4'd7; y = 4'd7;
    #1 clk = 1; #1 clk = 0;
    $finish;
  end
endmodule
"""

INVOLUTIONS = [name for name, op in OPERATORS.items() if op.involution]
PERTURBATIONS = [name for name, op in OPERATORS.items()
                 if not op.involution]


def waveform(source: str, path) -> str:
    sim = repro.open_sim(source, options=SimOptions(vcd_path=str(path)))
    result = sim.run(until=20)
    assert result.status is repro.SimStatus.OK
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def test_operator_metadata_split():
    assert sorted(INVOLUTIONS) == ["cmpswap", "nbaswap", "opswap"]
    assert sorted(PERTURBATIONS) == ["const", "stuck0", "stuck1"]


@pytest.mark.parametrize("operator", list(OPERATORS))
def test_operator_mutants_are_observable(operator, tmp_path):
    plan = build_plan(SOURCE, operators=[operator])
    assert plan.mutants, f"workhorse design must have {operator} sites"
    baseline = waveform(plan.baseline_source, tmp_path / "baseline.vcd")
    observable, equivalent = [], []
    for mutant in plan.mutants:
        wave = waveform(plan.mutant_source(mutant),
                        tmp_path / f"{mutant.id}.vcd")
        (observable if wave != baseline else equivalent).append(mutant.id)
    # ≥1 mutant per operator must visibly change the waveform; the
    # rest are flagged as potentially equivalent, not silently passed
    assert observable, f"every {operator} mutant was waveform-equivalent"
    assert len(equivalent) < len(plan.mutants)


@pytest.mark.parametrize("operator", INVOLUTIONS)
def test_involution_double_application_round_trips(operator):
    plan = build_plan(SOURCE, operators=[operator])
    assert plan.mutants
    for mutant in plan.mutants:
        modules = parse_source(SOURCE)
        apply_site(modules, operator, mutant.module, mutant.ordinal)
        once = print_modules(modules)
        assert once != plan.baseline_source, mutant.id
        apply_site(modules, operator, mutant.module, mutant.ordinal)
        assert print_modules(modules) == plan.baseline_source, mutant.id


@pytest.mark.parametrize("operator", PERTURBATIONS)
def test_non_involutions_do_not_round_trip(operator):
    plan = build_plan(SOURCE, operators=[operator])
    assert plan.mutants
    mutant = plan.mutants[0]
    modules = parse_source(SOURCE)
    apply_site(modules, operator, mutant.module, mutant.ordinal)
    try:
        apply_site(modules, operator, mutant.module, mutant.ordinal)
    except repro.MutationError:
        # legal: the site may stop matching after the first application
        # (e.g. stuck0 refuses an already-zero RHS)
        return
    assert print_modules(modules) != plan.baseline_source, mutant.id
