"""Two kernels in one process must not cross-talk.

The batch engine runs one kernel per worker process, but the library
makes a stronger promise: kernels share no mutable module state, so a
single process can interleave independent simulations — step one, step
the other, step the first again — and each produces exactly what it
would have produced running alone."""

from __future__ import annotations

import repro
from repro import SimOptions

SYMBOLIC = """
module tb;
  reg [3:0] a; reg [7:0] acc;
  initial begin
    acc = 0;
    repeat (5) begin
      #10 a = $random;
      acc = acc + a;
    end
  end
endmodule
"""

CONST_FOLD = """
module tb;
  reg [7:0] x;
  initial begin
    x = 8'd3 * 8'd5 + 8'd2;
    repeat (5) #10 x = x + 8'd7;
  end
endmodule
"""


def _signature(sim, net, nvars=32):
    """Manager-independent fingerprint of a (possibly symbolic) value:
    per-bit satisfying-assignment counts over a fixed variable space."""
    vec = sim.value(net)
    return [(sim.mgr.sat_count(a, nvars), sim.mgr.sat_count(b, nvars))
            for a, b in vec.bits]


def test_interleaved_symbolic_runs_match_solo():
    solo_one = repro.open_sim(SYMBOLIC)
    ref_one = solo_one.run()
    solo_two = repro.open_sim(SYMBOLIC, options=SimOptions(concrete_random=9))
    ref_two = solo_two.run()

    one = repro.open_sim(SYMBOLIC)
    two = repro.open_sim(SYMBOLIC, options=SimOptions(concrete_random=9))
    # interleave in 10-tick slices: 1, 2, 1, 2, ...
    for bound in (15, 25, 35, 45, None):
        one.run(until=bound)
        two.run(until=bound)
    got_one = one.kernel.run()
    got_two = two.kernel.run()

    assert _signature(one, "acc") == _signature(solo_one, "acc")
    assert two.value("acc").to_verilog_bits() == \
        solo_two.value("acc").to_verilog_bits()
    assert got_one.time == ref_one.time
    assert got_two.time == ref_two.time
    # identical symbolic work: same BDD arena, same event counters
    assert one.mgr.total_nodes == solo_one.mgr.total_nodes
    assert got_one.metrics() == ref_one.metrics()
    assert got_two.metrics() == ref_two.metrics()


def test_constant_folding_shares_nothing_across_designs():
    # _fold_const once kept a module-level scratch kernel; two designs
    # folding constants in the same process must each see fresh state
    first = repro.open_sim(CONST_FOLD)
    second = repro.open_sim(SYMBOLIC)
    third = repro.open_sim(CONST_FOLD)
    r1 = first.run()
    second.run()
    r3 = third.run()
    assert first.value("x").to_verilog_bits() == \
        third.value("x").to_verilog_bits() == \
        format((3 * 5 + 2 + 5 * 7) % 256, "08b")
    assert r1.metrics() == r3.metrics()


def test_same_process_rebuild_is_bit_identical():
    results = []
    for _ in range(2):
        sim = repro.open_sim(SYMBOLIC)
        result = sim.run()
        results.append((_signature(sim, "acc"),
                        sim.mgr.total_nodes,
                        result.to_dict()))
    assert results[0] == results[1]
