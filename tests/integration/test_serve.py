"""End-to-end tests of the ``repro.serve`` front door.

Boots real :class:`ServeApp` instances (stdlib HTTP server + scheduler
+ worker processes) and talks to them over the wire: concurrent
multi-tenant submission, quota rejection (429 + ``Retry-After``),
result-cache dedup (byte-identical payloads, operational-change hits
vs semantic-change misses), malformed-request 400s, and graceful
shutdown draining to a ``SERVEJRNL/1`` journal.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    SERVE_JOURNAL_SCHEMA, Scheduler, ServeConfig, ServeUnavailable,
    TenantQuota, serve_app,
)

OK_SOURCE = """
module t;
  reg [7:0] k;
  initial begin
    k = 0;
    repeat (4) #10 k = k + 1;
    $finish;
  end
endmodule
"""

ASSERT_SOURCE = """
module t;
  reg [1:0] a;
  initial begin
    a = $random;
    $assert(a != 2);
  end
endmodule
"""

SLOW_SOURCE = """
module t;
  reg [15:0] k;
  initial begin
    k = 0;
    repeat (3000) #1 k = k + 1;
    $finish;
  end
endmodule
"""


def _request(url: str, method: str = "GET", doc=None):
    """(status, headers, body-bytes) for one HTTP exchange."""
    data = json.dumps(doc).encode("utf-8") if doc is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


def _submit(app, doc):
    return _request(f"{app.url}/v1/runs", "POST", doc)


def _result(app, rid, wait=30):
    return _request(f"{app.url}/v1/runs/{rid}/result?wait={wait}")


@pytest.fixture(scope="module")
def app(tmp_path_factory):
    out_dir = str(tmp_path_factory.mktemp("serve"))
    config = ServeConfig(
        workers=2, out_dir=out_dir,
        quotas={"capped": TenantQuota(max_pending=0)})
    with serve_app(config) as running:
        running.start()
        yield running


# ---------------------------------------------------------------------
# the basic protocol
# ---------------------------------------------------------------------


def test_submit_status_result_roundtrip(app):
    code, headers, body = _submit(
        app, {"schema": "repro.serve.request/1", "source": OK_SOURCE,
              "options": {"seed": 101}})
    assert code == 202
    doc = json.loads(body)
    rid = doc["id"]
    assert headers["Location"] == f"/v1/runs/{rid}"
    assert doc["state"] in ("queued", "running")
    assert doc["cached"] is False

    code, headers, body = _result(app, rid)
    assert code == 200
    assert headers["X-Serve-Cache"] == "miss"
    outcome = json.loads(body)
    assert outcome["status"] == "ok" and outcome["ok"] is True

    code, _, body = _request(f"{app.url}/v1/runs/{rid}")
    assert code == 200
    status = json.loads(body)
    assert status["state"] == "done" and status["status"] == "ok"


def test_unknown_run_is_404(app):
    for sub in ("", "/result", "/trace"):
        code, _, body = _request(f"{app.url}/v1/runs/nope{sub}")
        assert code == 404
        assert "no run" in json.loads(body)["error"]


def test_healthz_status_and_metrics(app):
    code, _, body = _request(f"{app.url}/healthz")
    assert (code, body) == (200, b"ok\n")
    code, _, body = _request(f"{app.url}/status")
    assert code == 200 and isinstance(json.loads(body), list)
    code, headers, body = _request(f"{app.url}/metrics")
    assert code == 200
    assert "openmetrics" in headers["Content-Type"]
    exposition = body.decode("utf-8")
    assert "serve.submitted" in exposition.replace("_", ".")
    assert exposition.endswith("# EOF\n")


# ---------------------------------------------------------------------
# dedup: byte-identity, operational hits, semantic misses
# ---------------------------------------------------------------------


def test_dedup_is_byte_identical(app):
    spec = {"source": OK_SOURCE, "options": {"seed": 202}}
    code, _, body = _submit(app, spec)
    assert code == 202
    cold_id = json.loads(body)["id"]
    _, _, cold_payload = _result(app, cold_id)

    code, _, body = _submit(app, spec)
    assert code == 200  # served from cache at submission time
    doc = json.loads(body)
    assert doc["cached"] is True and doc["state"] == "done"
    assert doc["id"] != cold_id

    code, headers, hit_payload = _result(app, doc["id"])
    assert code == 200
    assert headers["X-Serve-Cache"] == "hit"
    assert hit_payload == cold_payload  # byte-identical, not just equal
    assert b"cached" not in hit_payload  # the marker is out-of-band


def test_operational_change_hits_semantic_change_misses(app):
    spec = {"source": OK_SOURCE, "options": {"seed": 303}}
    _, _, body = _submit(app, spec)
    _result(app, json.loads(body)["id"])

    operational = {"source": OK_SOURCE,
                   "options": {"seed": 303, "heartbeat_every": 50}}
    _, _, body = _submit(app, operational)
    assert json.loads(body)["cached"] is True

    semantic = {"source": OK_SOURCE, "options": {"seed": 304}}
    code, _, body = _submit(app, semantic)
    assert code == 202
    assert json.loads(body)["cached"] is False
    _result(app, json.loads(body)["id"])


def test_trace_endpoint_serves_violations(app):
    spec = {"source": ASSERT_SOURCE}  # symbolic $random: a == 2 reachable
    _, _, body = _submit(app, spec)
    rid = json.loads(body)["id"]
    code, _, body = _result(app, rid)
    assert code == 200
    assert json.loads(body)["status"] == "assert_failed"

    code, _, body = _request(f"{app.url}/v1/runs/{rid}/trace")
    assert code == 200
    trace = json.loads(body)
    assert trace["status"] == "assert_failed"
    assert trace["violations"], "expected at least one violation"

    # verdict statuses cache: the failing run dedups too
    _, _, body = _submit(app, spec)
    assert json.loads(body)["cached"] is True


# ---------------------------------------------------------------------
# quotas and malformed requests
# ---------------------------------------------------------------------


def test_quota_rejection_is_429_with_retry_after(app):
    code, headers, body = _submit(
        app, {"tenant": "capped", "source": OK_SOURCE})
    assert code == 429
    assert int(headers["Retry-After"]) >= 1
    error = json.loads(body)["error"]
    assert "max_pending" in error and "\n" not in error


@pytest.mark.parametrize("doc, fragment", [
    ({"source": OK_SOURCE, "schema": "repro.serve.request/0"},
     "unsupported schema"),
    ({}, "exactly one"),
    ({"source": OK_SOURCE, "path": "x.v"}, "exactly one"),
    ({"path": "relative.v"}, "must be absolute"),
    ({"source": OK_SOURCE, "options": {"bogus": 1}}, "unknown option"),
    ({"source": OK_SOURCE, "tenant": ""}, "non-empty"),
    ({"source": "module t; syntax error"}, ""),  # compile error -> 400
])
def test_malformed_requests_are_400(app, doc, fragment):
    code, _, body = _submit(app, doc)
    assert code == 400
    error = json.loads(body)["error"]
    assert fragment in error
    assert "\n" not in error  # single-line contract


def test_non_json_body_is_400(app):
    req = urllib.request.Request(
        f"{app.url}/v1/runs", data=b"not json {", method="POST")
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(req, timeout=30)
    assert info.value.code == 400
    assert "not valid JSON" in json.loads(info.value.read())["error"]


# ---------------------------------------------------------------------
# concurrency
# ---------------------------------------------------------------------


def test_concurrent_tenants_all_complete(app):
    results = {}
    errors = []

    def drive(tenant: str, seed: int) -> None:
        try:
            spec = {"tenant": tenant, "source": OK_SOURCE,
                    "options": {"seed": seed}}
            code, _, body = _submit(app, spec)
            assert code in (200, 202), body
            rid = json.loads(body)["id"]
            code, _, payload = _result(app, rid)
            assert code == 200, payload
            results[rid] = json.loads(payload)["status"]
        except Exception as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(f"team-{index % 3}",
                                             500 + index))
        for index in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors
    assert len(results) == 6
    assert set(results.values()) == {"ok"}


# ---------------------------------------------------------------------
# tenancy clamps and coalescing (scheduler level)
# ---------------------------------------------------------------------


def test_tenant_quota_clamps_budgets():
    from repro.guard import ResourceBudgets
    from repro.sim import SimOptions

    quota = TenantQuota(budgets=ResourceBudgets(
        wall_seconds=60, max_live_nodes=1000, max_concretizations=4))
    # a request without budgets inherits the ceilings outright
    inherited = quota.clamp(SimOptions()).budgets
    assert inherited.wall_seconds == 60
    assert inherited.max_live_nodes == 1000
    assert inherited.max_concretizations == 4
    # asking for less is allowed; more is clamped
    asked = SimOptions(budgets=ResourceBudgets(
        wall_seconds=10, max_live_nodes=99999, max_rss_mb=512,
        max_concretizations=2))
    clamped = quota.clamp(asked).budgets
    assert clamped.wall_seconds == 10       # under the ceiling
    assert clamped.max_live_nodes == 1000   # clamped down
    assert clamped.max_rss_mb == 512        # no ceiling set
    assert clamped.max_concretizations == 2


def test_identical_in_flight_submissions_coalesce(tmp_path):
    # unstarted scheduler: submissions queue but never dispatch, so the
    # second identical one must coalesce onto the first
    scheduler = Scheduler(ServeConfig(out_dir=str(tmp_path)))
    spec = {"source": OK_SOURCE, "options": {"seed": 7}}
    first = scheduler.submit(dict(spec))
    second = scheduler.submit(dict(spec))
    assert first["state"] == "queued"
    assert second["primary"] == first["id"]
    assert second["fingerprint"] == first["fingerprint"]
    third = scheduler.submit({"source": OK_SOURCE, "options": {"seed": 8}})
    assert "primary" not in third
    scheduler.close()


# ---------------------------------------------------------------------
# graceful shutdown
# ---------------------------------------------------------------------


def test_close_drains_to_journal(tmp_path):
    out_dir = str(tmp_path / "serve")
    running = serve_app(workers=1, out_dir=out_dir).start()
    submitted = []
    for seed in (1, 2, 3):
        _, _, body = _submit(
            running,
            {"source": SLOW_SOURCE, "options": {"seed": seed}})
        submitted.append(json.loads(body)["id"])
    running.close(drain=True)

    with open(f"{out_dir}/serve.jsonl", "r", encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    assert records[0]["kind"] == "header"
    assert records[0]["schema"] == SERVE_JOURNAL_SCHEMA
    assert records[-1]["kind"] == "close"
    # every submission reached a journaled verdict: ran to completion
    # ("terminal") or was cancelled in the queue — never lost
    fates = {record["id"]: record["kind"] for record in records
             if record["kind"] in ("terminal", "cancelled")}
    assert set(fates) == set(submitted)
    assert all(kind in ("terminal", "cancelled")
               for kind in fates.values())


def test_closed_scheduler_rejects_submissions(tmp_path):
    scheduler = Scheduler(ServeConfig(out_dir=str(tmp_path)))
    scheduler.close()
    with pytest.raises(ServeUnavailable, match="draining"):
        scheduler.submit({"source": OK_SOURCE})


# ---------------------------------------------------------------------
# the CLI front door
# ---------------------------------------------------------------------


def test_front_door_parser_and_tenant_file(tmp_path):
    from repro.cli import _load_tenants, build_front_door_parser

    args = build_front_door_parser().parse_args(
        ["--port", "0", "--workers", "3", "--max-in-flight", "4"])
    assert args.port == 0 and args.workers == 3
    assert args.max_in_flight == 4

    tenants = tmp_path / "tenants.json"
    tenants.write_text(json.dumps({
        "alice": {"max_in_flight": 1, "max_pending": 2,
                  "budget": {"wall_seconds": 30}},
        "bob": {},
    }))
    quotas = _load_tenants(str(tenants))
    assert quotas["alice"].max_in_flight == 1
    assert quotas["alice"].budgets.wall_seconds == 30
    assert quotas["bob"] == TenantQuota()
