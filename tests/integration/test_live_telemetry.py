"""Live telemetry end to end: kernel heartbeats, batch status files
and stall detection, the ``symsim top``/``status``/``serve-metrics``/
``bench compare`` CLI surfaces, and one real HTTP scrape.

Uses ``repro.open_sim`` (not the deprecated ``from_source`` shims) so
the suite stays free of DeprecationWarnings.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro import SimOptions, open_sim
from repro.batch import RunRequest, run_batch
from repro.batch.engine import _watch_stalls
from repro.cli import main
from repro.errors import BatchError
from repro.obs.live import (
    SCHEMA, deterministic_view, read_status, scan_status, write_status,
)
from repro.obs.serve import MetricsServer, build_scrape_source

COUNTER = """
module tb;
  reg clk; reg [3:0] d; reg [7:0] acc;
  initial clk = 0;
  always #5 clk = !clk;
  initial begin
    acc = 0;
    repeat (8) begin
      @(posedge clk) d = $random;
      acc = acc + d;
    end
    #1 $finish;
  end
endmodule
"""

WEDGE = """
module tb;
  reg x;
  initial begin
    x = 0;
    while (1) x = !x;
  end
endmodule
"""


def _requests(count, **option_kwargs):
    return [RunRequest(name=f"counter-{index}", source=COUNTER,
                       options=SimOptions(**option_kwargs))
            for index in range(count)]


# ---------------------------------------------------------------------------
# kernel heartbeats


class TestKernelHeartbeat:
    def test_status_file_reaches_terminal_state(self, tmp_path):
        path = str(tmp_path / "run.json")
        sim = open_sim(COUNTER, options=SimOptions(
            heartbeat_path=path, heartbeat_every=2,
            heartbeat_name="hb-run", echo_output=False))
        sim.run()
        record = read_status(path)
        assert record["schema"] == SCHEMA
        assert record["name"] == "hb-run"
        assert record["status"] == "ok"
        assert record["events_processed"] > 0
        assert record["seq"] > 0

    def test_heartbeat_payloads_deterministic_across_runs(self):
        def run_once():
            beats = []
            sim = open_sim(COUNTER, options=SimOptions(
                heartbeat_every=2, heartbeat_callback=beats.append,
                heartbeat_name="same", echo_output=False))
            sim.run()
            views = [deterministic_view(b) for b in beats]
            return beats, hashlib.sha256(
                json.dumps(views, sort_keys=True).encode()).hexdigest()

        beats_a, hash_a = run_once()
        beats_b, hash_b = run_once()
        assert len(beats_a) == len(beats_b) > 1
        assert hash_a == hash_b
        # the raw records differ (wall clocks), only the views agree
        assert beats_a[-1]["status"] == "ok"

    def test_aborted_run_stamps_terminal_status(self, tmp_path):
        from repro.errors import SimulationAborted
        from repro.guard import ResourceBudgets

        path = str(tmp_path / "abort.json")
        sim = open_sim(COUNTER, options=SimOptions(
            heartbeat_path=path, heartbeat_every=1, echo_output=False,
            budgets=ResourceBudgets(max_events=5, max_concretizations=0)))
        with pytest.raises(SimulationAborted):
            sim.run()
        assert read_status(path)["status"] == "aborted"

    def test_heartbeat_options_visible_in_repr(self):
        options = SimOptions(heartbeat_path="s.json", heartbeat_every=7)
        text = repr(options)
        assert "heartbeat_path='s.json'" in text
        assert "heartbeat_every=7" in text


# ---------------------------------------------------------------------------
# batch: per-run status files + stall detection


class TestBatchTelemetry:
    def test_four_worker_batch_emits_per_run_status(self, tmp_path):
        out = str(tmp_path / "batch")
        result = run_batch(_requests(4), workers=4, out_dir=out,
                           heartbeat_every=2, trace=False)
        assert result.ok
        assert result.status_dir == os.path.join(out, "status")
        records = scan_status([result.status_dir])
        assert [r["name"] for r in records] == \
            [f"counter-{i}" for i in range(4)]
        assert all(r["status"] == "ok" for r in records)
        pids = {r["pid"] for r in records}
        assert len(pids) > 1  # really ran on multiple workers
        assert result.to_dict()["status_dir"] == result.status_dir

    def test_hung_run_status_file_reaches_hang(self, tmp_path):
        out = str(tmp_path / "batch")
        requests = [RunRequest(name="wedge", source=WEDGE,
                               options=SimOptions(max_step_activity=2000))]
        result = run_batch(requests, workers=1, out_dir=out,
                           heartbeat_every=2, trace=False)
        assert result["wedge"].status.value == "hang"
        record = read_status(os.path.join(out, "status", "wedge.json"))
        assert record["status"] == "hang"
        assert record["error"]

    def test_heartbeats_disabled(self, tmp_path):
        out = str(tmp_path / "batch")
        result = run_batch(_requests(1), workers=1, out_dir=out,
                           heartbeat_every=None, trace=False)
        assert result.status_dir is None
        assert not os.path.exists(os.path.join(out, "status"))

    def test_callback_rejected_and_stall_needs_heartbeats(self, tmp_path):
        bad = [RunRequest(name="cb", source=COUNTER,
                          options=SimOptions(heartbeat_callback=print))]
        with pytest.raises(BatchError, match="heartbeat_callback"):
            run_batch(bad, workers=1, out_dir=str(tmp_path))
        with pytest.raises(BatchError, match="stall_after"):
            run_batch(_requests(1), workers=1, out_dir=str(tmp_path),
                      heartbeat_every=None, stall_after=1.0)

    def test_watch_stalls_fires_once_per_wedged_run(self, tmp_path):
        status_dir = str(tmp_path / "status")
        stale = {"schema": SCHEMA, "name": "stuck", "status": "running",
                 "ts_unix": time.time() - 120.0}
        write_status(os.path.join(status_dir, "stuck.json"), stale)
        write_status(os.path.join(status_dir, "fine.json"),
                     {"schema": SCHEMA, "name": "fine",
                      "status": "running", "ts_unix": time.time()})
        write_status(os.path.join(status_dir, "done.json"),
                     {"schema": SCHEMA, "name": "done", "status": "ok",
                      "ts_unix": time.time() - 120.0})
        fired = []
        seen = set()
        for _ in range(3):  # repeated polls must not re-fire
            _watch_stalls(status_dir, ["stuck", "fine", "done"], seen,
                          stall_after=30.0, on_stall=fired.append)
        assert [h.name for h in fired] == ["stuck"]
        assert fired[0].age_seconds > 30.0
        # a stalled run that is no longer in flight is not reported
        seen.clear()
        fired.clear()
        _watch_stalls(status_dir, ["fine"], seen, stall_after=30.0,
                      on_stall=fired.append)
        assert fired == []

    def test_run_batch_reports_stall_through_polling_loop(self, tmp_path):
        """End to end through run_batch's wait/poll loop.

        The run itself is healthy; its status file is pre-seeded with
        an ancient ``running`` record and the worker's heartbeat period
        is set beyond the run's safe points, so the record stays stale
        while the run is genuinely in flight — exactly what a wedged
        worker looks like from the controller.
        """
        out = str(tmp_path / "batch")
        write_status(os.path.join(out, "status", "counter-0.json"),
                     {"schema": SCHEMA, "name": "counter-0",
                      "status": "running", "ts_unix": time.time() - 300.0})
        stalls = []
        result = run_batch(_requests(1), workers=1, out_dir=out,
                           heartbeat_every=10_000_000, trace=False,
                           stall_after=0.05, on_stall=stalls.append)
        assert result.stalled_runs == ["counter-0"]
        assert [h.name for h in stalls] == ["counter-0"]
        # the batch still drained fine; terminal status overwrote stale
        assert result.ok
        assert read_status(os.path.join(
            out, "status", "counter-0.json"))["status"] == "ok"

    def test_healthy_batch_reports_no_stalls(self, tmp_path):
        result = run_batch(_requests(2), workers=2,
                           out_dir=str(tmp_path / "batch"),
                           heartbeat_every=2, trace=False,
                           stall_after=300.0)
        assert result.stalled_runs == []


# ---------------------------------------------------------------------------
# CLI surfaces


@pytest.fixture(scope="module")
def status_dir(tmp_path_factory):
    """One finished two-run batch whose status dir the CLI tests read."""
    out = str(tmp_path_factory.mktemp("cli-batch"))
    run_batch(_requests(2), workers=2, out_dir=out, heartbeat_every=2,
              trace=False, write_metrics=True)
    return os.path.join(out, "status")


class TestTelemetryCli:
    def test_top_once(self, status_dir, capsys):
        assert main(["top", status_dir, "--once"]) == 0
        out = capsys.readouterr().out
        assert "RUN" in out and "counter-0" in out and "counter-1" in out
        assert "2 runs: 0 running, 2 done" in out

    def test_top_once_empty_dir(self, tmp_path, capsys):
        assert main(["top", str(tmp_path), "--once"]) == 0
        assert "(no heartbeat records found)" in capsys.readouterr().out

    def test_status_json(self, status_dir, capsys):
        assert main(["status", status_dir, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["name"] for r in records] == ["counter-0", "counter-1"]
        assert all(r["schema"] == SCHEMA for r in records)

    def test_serve_metrics_once(self, status_dir, capsys):
        assert main(["serve-metrics", "--status", status_dir,
                     "--once"]) == 0
        body = capsys.readouterr().out
        assert 'symsim_run_info{run="counter-0",status="ok"} 1' in body
        assert body.endswith("# EOF\n")

    def test_serve_metrics_requires_a_source(self, capsys):
        assert main(["serve-metrics", "--once"]) == 2
        assert "nothing to serve" in capsys.readouterr().err

    def test_run_cli_heartbeat_and_stats(self, tmp_path, capsys):
        design = tmp_path / "tb.v"
        design.write_text(COUNTER)
        status = tmp_path / "hb.json"
        code = main([str(design), "--quiet", "--stats",
                     "--heartbeat", str(status),
                     "--heartbeat-every", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[stats] heartbeats=" in out
        assert f"[obs] heartbeat status: {status}" in out
        assert read_status(str(status))["status"] == "ok"

    def test_report_rejects_malformed_metrics_file(self, tmp_path,
                                                   capsys):
        bad = tmp_path / "metrics.json"
        bad.write_text("{definitely not json")
        assert main(["report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: cannot render {bad}")
        assert len(err.strip().splitlines()) == 1  # one line, no traceback

    def test_report_empty_and_list_files(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2
        assert "file is empty" in capsys.readouterr().err
        traj = tmp_path / "BENCH_x.json"
        traj.write_text("[]")
        assert main(["report", str(traj)]) == 2
        assert "bench compare" in capsys.readouterr().err

    def test_bench_compare_pass_and_fail(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(
            [{"bench": "b", "wall_seconds": {"4": 5.0}}]))
        assert main(["bench", "compare", str(old), str(old)]) == 0
        assert "PASS" in capsys.readouterr().out
        new.write_text(json.dumps(
            [{"bench": "b", "wall_seconds": {"4": 6.0}}]))
        assert main(["bench", "compare", str(old), str(new),
                     "--max-regress", "10%"]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert main(["bench", "compare", str(old), str(new),
                     "--max-regress", "25%"]) == 0
        capsys.readouterr()
        assert main(["bench", "compare", str(old),
                     str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_requires_compare_verb(self, capsys):
        assert main(["bench", "frobnicate"]) == 2
        assert "usage:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# one real scrape over HTTP


class TestMetricsServer:
    def test_scrape_status_and_healthz(self, status_dir):
        source = build_scrape_source(status_paths=[status_dir])
        with MetricsServer(source) as server:  # port=0: ephemeral
            server.watch_status([status_dir])
            server.start()
            with urllib.request.urlopen(server.url, timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "application/openmetrics-text")
                body = resp.read().decode()
            assert "symsim_run_sim_time" in body
            assert body.endswith("# EOF\n")
            base = f"http://{server.host}:{server.port}"
            with urllib.request.urlopen(f"{base}/status",
                                        timeout=10) as resp:
                assert len(json.load(resp)) == 2
            with urllib.request.urlopen(f"{base}/healthz",
                                        timeout=10) as resp:
                assert resp.read() == b"ok\n"

    def test_unknown_route_404(self, status_dir):
        source = build_scrape_source(status_paths=[status_dir])
        with MetricsServer(source) as server:
            server.start()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{server.host}:{server.port}/nope",
                    timeout=10)
            assert excinfo.value.code == 404
