"""Tests for extension features: VCD dumping, wired nets, intra-event
assignments."""

import os

import pytest

import repro
from tests.conftest import run_source


class TestVcd:
    def test_dumpfile_dumpvars(self, tmp_path):
        path = tmp_path / "wave.vcd"
        result, _ = run_source(f"""
            module tb; reg clk; reg [3:0] q;
              initial begin
                $dumpfile("{path}");
                $dumpvars;
                clk = 0; q = 0;
                repeat (4) begin
                  #5 clk = ~clk;
                  q = q + 1;
                end
                $finish;
              end
            endmodule
        """)
        text = path.read_text()
        assert "$enddefinitions" in text
        assert "$var wire 1" in text
        assert "$var wire 4" in text
        assert "#5" in text and "#20" in text
        assert "b0100 " in text  # q reaches 4

    def test_options_vcd_path(self, tmp_path):
        path = str(tmp_path / "auto.vcd")
        result, _ = run_source("""
            module tb; reg [1:0] v;
              initial begin
                v = 0;
                #3 v = 2;
              end
            endmodule
        """, vcd_path=path)
        text = open(path).read()
        assert "$dumpvars" in text
        assert "b10 " in text

    def test_symbolic_bits_dump_as_x(self, tmp_path):
        path = str(tmp_path / "sym.vcd")
        result, _ = run_source("""
            module tb; reg [1:0] v;
              initial begin
                #1 v = $random;
              end
            endmodule
        """, vcd_path=path)
        text = open(path).read()
        assert "bxx " in text

    def test_hierarchical_scopes(self, tmp_path):
        path = str(tmp_path / "hier.vcd")
        result, _ = run_source("""
            module leaf(input [1:0] a); endmodule
            module tb; reg [1:0] x; leaf u(.a(x));
              initial #1 x = 1;
            endmodule
        """, vcd_path=path)
        text = open(path).read()
        assert "$scope module u $end" in text
        assert "$upscope" in text

    def test_concrete_resim_exact_waveform(self, tmp_path):
        path = str(tmp_path / "resim.vcd")
        result, sim = run_source("""
            module tb; reg [3:0] a;
              initial begin
                a = $random;
                if (a == 6) $error;
              end
            endmodule
        """)
        concrete = repro.resimulate(
            sim.program, result.violations[0].trace,
            options=repro.SimOptions(vcd_path=path))
        text = open(path).read()
        assert "b0110 " in text  # the witness value, not x


class TestWiredNets:
    def test_wand(self):
        result, _ = run_source("""
            module tb; reg a, b; wand w;
              assign w = a;
              assign w = b;
              initial begin
                a = 1; b = 1; #1 if (w !== 1) $error;
                b = 0; #1 if (w !== 0) $error;   // 0 dominates
                a = 1'bz; b = 1; #1 if (w !== 1) $error;  // z yields
              end
            endmodule
        """)
        assert not result.violations

    def test_wor(self):
        result, _ = run_source("""
            module tb; reg a, b; wor w;
              assign w = a;
              assign w = b;
              initial begin
                a = 0; b = 0; #1 if (w !== 0) $error;
                b = 1; #1 if (w !== 1) $error;   // 1 dominates
                a = 1'bz; b = 0; #1 if (w !== 0) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_tri0_tri1_pull(self):
        result, _ = run_source("""
            module tb; reg d, en; tri0 t0; tri1 t1;
              assign t0 = en ? d : 1'bz;
              assign t1 = en ? d : 1'bz;
              initial begin
                en = 0; d = 1;
                #1 if (t0 !== 1'b0) $error;   // pulled down
                if (t1 !== 1'b1) $error;      // pulled up
                en = 1;
                #1 if (t0 !== 1'b1 || t1 !== 1'b1) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_wand_conflict_with_x(self):
        result, _ = run_source("""
            module tb; reg a, b; wand w;
              assign w = a;
              assign w = b;
              initial begin
                a = 1'bx; b = 1; #1 if (w !== 1'bx) $error;
                a = 1'bx; b = 0; #1 if (w !== 1'b0) $error;  // 0 beats x
              end
            endmodule
        """)
        assert not result.violations


class TestIntraAssignEvent:
    def test_blocking_event_capture(self):
        result, _ = run_source("""
            module tb; reg clk; reg [3:0] d, q;
              initial begin
                clk = 0; d = 5;
                #10 clk = 1;
              end
              initial begin
                q = @(posedge clk) d;
                if ($time !== 10) $error;
                if (q !== 5) $error;
              end
              initial #3 d = 9;   // RHS was captured at t=0: q gets 5
            endmodule
        """)
        assert not result.violations

    def test_named_event_intra(self):
        result, _ = run_source("""
            module tb; event go; reg [3:0] v, out;
              initial begin
                v = 7;
                #4 -> go;
              end
              initial begin
                out = @(go) v + 1;
                if ($time !== 4 || out !== 8) $error;
              end
            endmodule
        """)
        assert not result.violations
