"""Integration: observability instruments a real symbolic run.

Covers the acceptance path of the obs subsystem: a small design traced
to a Chrome-trace JSON that loads via ``json.load`` and contains
matched begin/end spans per simulation time step; profiler and metrics
agreeing with ``SimStats``; the CLI surface (``--trace-out``,
``--profile-out``, ``--metrics-out``, ``symsim report``).
"""

import json

import pytest

import repro
from repro import (
    HotSpotProfiler, MetricsRegistry, Observability, SimOptions, Tracer,
)
from repro.cli import main as cli_main

#: quickstart-shaped design: symbolic splits, a merge, delays, $finish
SOURCE = r"""
module tb;
  reg [3:0] a, b;
  reg [4:0] sum;
  reg [3:0] prod;
  initial begin
    a = $random;
    b = $random;
    sum = a + b;
    if (a < b) prod = a;
    else       prod = b;
    #1 sum = sum + 1;
    #2 prod = 0;
    #1 $finish;
  end
endmodule
"""


def run_with(obs, trace_stats=False):
    sim = repro.open_sim(
        SOURCE, options=SimOptions(obs=obs, trace_stats=trace_stats))
    return sim, sim.run()


class TestStepSpans:
    def test_matched_begin_end_per_time_step(self):
        obs = Observability(tracer=Tracer())
        _, result = run_with(obs)
        records = obs.tracer.records
        begins = [r for r in records
                  if r["ev"] == "begin" and r["name"] == "step"]
        ends = [r for r in records
                if r["ev"] == "end" and r["name"] == "step"]
        assert len(begins) == len(ends) > 0
        begin_times = [r["args"]["sim_time"] for r in begins]
        end_times = [r["args"]["sim_time"] for r in ends]
        assert begin_times == end_times
        # every simulated time step appears exactly once, in order
        assert begin_times == sorted(set(begin_times))
        assert begin_times[0] == 0
        assert begin_times[-1] == result.time

    def test_chrome_trace_loads_and_contains_steps(self, tmp_path):
        path = tmp_path / "trace.json"
        obs = Observability(tracer=Tracer(chrome_path=str(path)))
        run_with(obs)
        obs.close()
        document = json.load(open(path))  # must be valid JSON
        events = document["traceEvents"]
        step_b = [e for e in events
                  if e["name"] == "step" and e["ph"] == "B"]
        step_e = [e for e in events
                  if e["name"] == "step" and e["ph"] == "E"]
        assert len(step_b) == len(step_e) > 0
        # pops and resumes present as complete ('X') events
        assert any(e["ph"] == "X" and e["cat"] == "pop" for e in events)
        assert any(e["ph"] == "X" and e["cat"] == "resume" for e in events)

    def test_pop_spans_cover_every_event(self):
        obs = Observability(tracer=Tracer())
        _, result = run_with(obs)
        pops = [r for r in obs.tracer.records if r["cat"] == "pop"]
        assert len(pops) == result.stats.events_processed
        for record in pops:
            assert "dur_us" in record
            assert "site" in record["args"]

    def test_merge_instants_match_stats(self):
        obs = Observability(tracer=Tracer())
        _, result = run_with(obs)
        merges = [r for r in obs.tracer.records if r["name"] == "merge"]
        assert len(merges) == result.stats.events_merged > 0


class TestProfiler:
    def test_profile_agrees_with_stats(self):
        obs = Observability(profiler=HotSpotProfiler())
        sim, result = run_with(obs)
        totals = obs.profiler.totals()
        assert totals["pops"] == result.stats.events_processed
        assert totals["merges"] == result.stats.events_merged
        assert totals["instructions"] == result.stats.instructions
        # every site label carries a source line
        assert all(":" in s.label for s in obs.profiler.sites.values()
                   if s.kind == "proc")

    def test_profile_document_includes_bdd(self):
        obs = Observability(profiler=HotSpotProfiler())
        sim, _ = run_with(obs)
        document = sim.kernel.profile_document()
        assert document["schema"] == "repro.obs.profile/1"
        assert document["bdd"]["ite_hits"] > 0
        assert document["meta"]["design"] == "tb"
        assert document["sites"]

    def test_profile_document_requires_profiler(self):
        sim, _ = run_with(None)
        with pytest.raises(repro.SimulationError):
            sim.kernel.profile_document()


class TestMetrics:
    def test_gauges_match_stats(self):
        obs = Observability(metrics=MetricsRegistry())
        sim, result = run_with(obs)
        registry = obs.metrics
        assert registry.gauge("sim.events_processed").value == \
            result.stats.events_processed
        assert registry.gauge("sim.instructions").value == \
            result.stats.instructions
        assert registry.gauge("bdd.nodes").value == sim.mgr.total_nodes
        assert registry.counter("sim.merges").value == \
            result.stats.events_merged

    def test_timeline_series_mirror_stats_timeline(self):
        obs = Observability(metrics=MetricsRegistry())
        _, result = run_with(obs, trace_stats=True)
        samples = obs.metrics.series("sim.timeline.events").samples
        by_time = dict(samples)
        for point in result.stats.timeline:
            assert by_time[point.sim_time] == point.events

    def test_bdd_latency_instrumentation(self):
        obs = Observability(metrics=MetricsRegistry())
        sim = repro.open_sim(
            SOURCE, options=SimOptions(obs=obs))
        sim.mgr.instrument_latency(obs.metrics, sample_every=2)
        sim.run()
        hist = obs.metrics.histogram(
            "bdd.op_seconds", labels=("op",)).labels(op="ite")
        assert hist.count > 0
        assert hist.sum >= 0


class TestStatsSummary:
    def test_summary_includes_instructions_and_bdd(self):
        sim, result = run_with(None)
        text = result.stats.summary()
        assert "instructions=" in text
        assert "bdd:" in text
        assert "ite-cache" in text
        assert f"nodes={sim.mgr.total_nodes}" in text

    def test_no_obs_leaves_hot_paths_unwrapped(self):
        sim, _ = run_with(None)
        assert "_dispatch" not in sim.kernel.__dict__
        # The compiled tier installs its own frame runner, but no
        # observability wrapper may be present without a bundle.
        runner = sim.kernel.__dict__.get("_run_frame")
        assert runner != sim.kernel._obs_run_frame
        assert runner == sim.kernel._frame_impl

    def test_obs_swaps_instance_dispatch(self):
        obs = Observability(tracer=Tracer())
        sim, _ = run_with(obs)
        assert "_dispatch" in sim.kernel.__dict__
        assert "_run_frame" in sim.kernel.__dict__


class TestCliSurface:
    def write_design(self, tmp_path):
        path = tmp_path / "design.v"
        path.write_text(SOURCE)
        return str(path)

    def test_run_flags_and_report(self, tmp_path, capsys):
        design = self.write_design(tmp_path)
        trace = tmp_path / "t.json"
        profile = tmp_path / "p.json"
        metrics = tmp_path / "m.json"
        code = cli_main([design, "--quiet",
                         "--trace-out", str(trace),
                         "--profile-out", str(profile),
                         "--metrics-out", str(metrics)])
        assert code == 0
        assert json.load(open(trace))["traceEvents"]
        assert json.load(open(profile))["schema"] == "repro.obs.profile/1"
        assert json.load(open(metrics))["schema"] == "repro.obs.metrics/1"
        capsys.readouterr()

        assert cli_main(["report", str(profile), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "hot-spot profile" in out
        assert "ite-cache hit-rate" in out

        assert cli_main(["report", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "sim.events_processed" in out

    def test_profile_prints_inline(self, tmp_path, capsys):
        design = self.write_design(tmp_path)
        assert cli_main([design, "--quiet", "--profile",
                         "--profile-top", "5"]) == 0
        out = capsys.readouterr().out
        assert "top" in out and "event sites" in out
        assert "ite-cache hit-rate" in out

    def test_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "unknown/9"}')
        assert cli_main(["report", str(bad)]) == 2

    def test_trace_jsonl_schema(self, tmp_path, capsys):
        design = self.write_design(tmp_path)
        jsonl = tmp_path / "t.jsonl"
        assert cli_main([design, "--quiet",
                         "--trace-jsonl", str(jsonl)]) == 0
        lines = jsonl.read_text().strip().splitlines()
        assert lines
        names = set()
        for line in lines:
            record = json.loads(line)
            names.add(record["name"])
        assert "step" in names
