"""Mutation campaigns end to end: classification, determinism across
pool widths, manifest loading and the ``symsim mutate`` CLI.

The workhorse design pairs a checked adder with an *unchecked* spare
output, so one campaign produces detected mutants, surviving mutants,
and (via monkeypatched stillborn sources) invalid ones — every
classification bucket without any slow symbolic run.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import MutationError
from repro.mutate import (
    BASELINE_NAME, CampaignConfig, MutationPlan, Variant, classify,
    load_campaign, run_campaign, witness_trace,
)
from repro.sim.resim import resimulate

# dut.s is checked by the testbench; dut.spare and dut.t are not —
# mutants on the spare logic survive the checker.
DESIGN = """
module dut(a, b, s, spare, t);
  input [3:0] a, b;
  output [4:0] s;
  output [3:0] spare;
  output t;
  assign s = {1'b0, a} + {1'b0, b};
  assign spare = a & b;
  assign t = (a == b);
endmodule

module tb;
  reg [3:0] a, b;
  wire [4:0] s;
  wire [3:0] spare;
  wire t;
  dut u(.a(a), .b(b), .s(s), .spare(spare), .t(t));
  initial begin
    a = $random;
    b = $random;
    #1 $assert(s == ({1'b0, a} + {1'b0, b}));
    #1 $finish;
  end
endmodule
"""

BROKEN_CHECKER = DESIGN.replace("$assert(s == ({1'b0, a} + {1'b0, b}))",
                                "$assert(s == 5'd0)")

BUGGY_VARIANT = DESIGN.replace("{1'b0, a} + {1'b0, b};\n  assign spare",
                               "{1'b0, a} - {1'b0, b};\n  assign spare")


def small_config(**overrides) -> CampaignConfig:
    kwargs = dict(source=DESIGN, until=10)
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


# ---------------------------------------------------------------------------
# classification


def test_campaign_classifies_detected_and_surviving(tmp_path):
    report = run_campaign(small_config(), workers=1,
                          out_dir=str(tmp_path / "out"))
    assert report.baseline_status == "ok"
    by_id = {m.id: m for m in report.mutants}
    # checked adder: stuck-at and opswap mutants must be caught
    detected_sites = {(m.operator, m.ordinal) for m in report.mutants
                      if m.classification == "detected"}
    assert ("opswap", 0) in detected_sites  # the + in s
    assert any(op == "stuck0" for op, _ in detected_sites)
    # unchecked spare logic: its mutants survive
    survivors = report.survivors
    assert survivors
    assert {m.id for m in survivors} <= {
        m.id for m in report.mutants if m.classification == "undetected"}
    # totals are consistent and the score matches its definition
    totals = report.totals
    assert totals["planned"] == len(report.mutants)
    assert sum(totals[b] for b in
               ("detected", "undetected", "aborted", "invalid")) \
        == totals["planned"]
    assert report.score == pytest.approx(
        totals["detected"] / (totals["detected"] + totals["undetected"]))
    assert 0.0 < report.score < 1.0
    # per-operator rows sum to the totals
    for bucket in ("detected", "undetected"):
        assert sum(row[bucket] for row in report.by_operator.values()) \
            == totals[bucket]
    # every mutant id resolves back into the plan
    for mutant in report.mutants:
        planned = report.plan[mutant.id]
        assert planned.operator == mutant.operator
        assert mutant.description == planned.description
    assert by_id  # silence unused warning paths


def test_detected_mutants_carry_replayable_witnesses():
    report = run_campaign(small_config(verify_witnesses=True), workers=1)
    detected = [m for m in report.mutants if m.classification == "detected"]
    assert detected
    for mutant in detected:
        assert mutant.witness is not None
        assert mutant.witness["trace"], "witness must carry trace entries"
        assert mutant.witness_verified is True
    survivors = report.survivors
    for mutant in survivors:
        assert mutant.witness is None
        assert mutant.witness_verified is None


def test_witness_replays_outside_the_campaign():
    """A witness dict alone (no campaign state) replays concretely."""
    from repro.compile import compile_design
    from repro.frontend import elaborate, parse_source

    report = run_campaign(small_config(), workers=1)
    detected = next(m for m in report.mutants
                    if m.classification == "detected")
    source = report.plan.mutant_source(report.plan[detected.id])
    program = compile_design(elaborate(parse_source(source),
                                       top=report.top))
    result = resimulate(program, witness_trace(detected.witness),
                        until=10, expect_violation=True)
    assert result.violations


def test_invalid_mutants_fold_into_the_report(monkeypatch):
    original = MutationPlan.mutant_source
    target = {}

    def corrupt(self, mutant):
        if not target:
            target["id"] = mutant.id
        if mutant.id == target["id"]:
            return "module broken("
        return original(self, mutant)

    monkeypatch.setattr(MutationPlan, "mutant_source", corrupt)
    report = run_campaign(small_config(), workers=1)
    broken = next(m for m in report.mutants if m.id == target["id"])
    assert broken.classification == "invalid"
    assert broken.status == "invalid"
    assert broken.error
    assert report.totals["invalid"] == 1
    # stillborn mutants are excluded from the score denominator
    judged = report.totals["detected"] + report.totals["undetected"]
    assert report.score == pytest.approx(
        report.totals["detected"] / judged)


def test_dirty_baseline_raises():
    with pytest.raises(MutationError, match="baseline run is not clean"):
        run_campaign(CampaignConfig(source=BROKEN_CHECKER, until=10))


def test_variant_name_collisions_raise():
    config = small_config(
        variants=[Variant(name=BASELINE_NAME, source=DESIGN)])
    with pytest.raises(MutationError, match="collides"):
        run_campaign(config)


def test_explicit_variants_are_classified():
    config = small_config(
        verify_witnesses=True,
        variants=[Variant(name="planted-sub", source=BUGGY_VARIANT),
                  Variant(name="clean-twin", source=DESIGN)])
    report = run_campaign(config, workers=2)
    variants = {v.id: v for v in report.variants}
    assert variants["planted-sub"].classification == "detected"
    assert variants["planted-sub"].witness_verified is True
    assert variants["clean-twin"].classification == "undetected"
    assert report.totals["variants"] == 2
    # variants never contaminate the mutation score
    assert report.totals["planned"] == len(report.mutants)


def test_classify_maps_statuses():
    assert classify("assert_failed") == "detected"
    assert classify("ok") == "undetected"
    assert classify("aborted") == "aborted"
    assert classify("crash") == "aborted"


# ---------------------------------------------------------------------------
# determinism: the report must not observe the pool width


def test_report_identical_across_pool_widths(tmp_path):
    narrow = run_campaign(small_config(seed=5), workers=1,
                          out_dir=str(tmp_path / "w1"))
    wide = run_campaign(small_config(seed=5), workers=4,
                        out_dir=str(tmp_path / "w4"))
    assert narrow.to_json() == wide.to_json()
    # and the serialized report files are byte-identical too
    with open(narrow.report_path, "rb") as left, \
            open(wide.report_path, "rb") as right:
        assert left.read() == right.read()


def test_report_and_metrics_written(tmp_path):
    out = tmp_path / "out"
    report = run_campaign(small_config(), workers=1, out_dir=str(out))
    assert report.report_path == str(out / "report.json")
    with open(report.report_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["schema"] == "repro.mutate.report/1"
    assert document["score"] == pytest.approx(report.score)
    with open(out / "metrics.json", "r", encoding="utf-8") as handle:
        metrics = json.load(handle)
    names = {m["name"] for m in metrics["metrics"]}
    assert {"mutate.sites", "mutate.planned", "mutate.score",
            "mutate.mutants", "mutate.operator_mutants"} <= names
    score = next(m for m in metrics["metrics"]
                 if m["name"] == "mutate.score")
    assert score["value"] == pytest.approx(report.score)
    # the batch engine's own families survive the rewrite
    assert any(name.startswith("batch.") for name in names)


# ---------------------------------------------------------------------------
# manifest loading


def write_manifest(tmp_path, document, name="campaign.json"):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


def test_manifest_roundtrip(tmp_path):
    (tmp_path / "design.v").write_text(DESIGN)
    path = write_manifest(tmp_path, {
        "path": "design.v",
        "operators": ["opswap", "cmpswap"],
        "seed": 9,
        "max_mutants": 3,
        "until": 10,
        "workers": 2,
        "verify_witnesses": True,
        "variants": [{"name": "twin", "path": "design.v"}],
    })
    config, workers = load_campaign(path)
    assert workers == 2
    assert config.operators == ["opswap", "cmpswap"]
    assert config.seed == 9
    assert config.max_mutants == 3
    assert config.until == 10
    assert config.verify_witnesses is True
    assert config.source == DESIGN
    assert [v.name for v in config.variants] == ["twin"]


def test_manifest_builtin_design(tmp_path):
    path = write_manifest(tmp_path, {
        "design": "alu4", "params": {"runtime": 20, "fixed": True},
    })
    config, workers = load_campaign(path)
    assert workers == 1
    assert config.defines["ALU_FIXED"] == "1"
    assert "module alu4" in config.source


@pytest.mark.parametrize("document, match", [
    ({"source": "module m; endmodule", "zap": 1}, "unknown key"),
    ({}, "exactly one"),
    ({"source": "m", "path": "x.v"}, "exactly one"),
    ({"source": "m", "operators": ["zap"]}, "unknown mutation operator"),
    ({"source": "m", "seed": "x"}, "seed"),
    ({"source": "m", "max_mutants": -2}, "max_mutants"),
    ({"source": "m", "workers": 0}, "workers"),
    ({"source": "m", "variants": [{"source": "m"}]}, "name"),
    ({"source": "m", "variants": [
        {"name": "a", "source": "m"},
        {"name": "a", "source": "m"}]}, "duplicate"),
])
def test_manifest_rejects_malformed(tmp_path, document, match):
    path = write_manifest(tmp_path, document)
    with pytest.raises(MutationError, match=match):
        load_campaign(path)


def test_manifest_unreadable_and_invalid_json(tmp_path):
    with pytest.raises(MutationError, match="cannot read"):
        load_campaign(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(MutationError, match="not valid JSON"):
        load_campaign(str(bad))


# ---------------------------------------------------------------------------
# the symsim mutate CLI


def test_cli_campaign_end_to_end(tmp_path, capsys):
    (tmp_path / "design.v").write_text(DESIGN)
    path = write_manifest(tmp_path, {
        "path": "design.v", "until": 10,
        "operators": ["opswap", "stuck0"], "workers": 2,
    })
    out_dir = tmp_path / "out"
    code = main(["mutate", path, "--out-dir", str(out_dir),
                 "--report-out", str(tmp_path / "report.json")])
    out = capsys.readouterr().out
    assert code == 0
    assert "mutation campaign" in out
    assert "score:" in out
    assert "detected] m0000_opswap_dut_o0" in out
    assert (out_dir / "report.json").exists()
    assert (tmp_path / "report.json").exists()
    # the saved report renders through `symsim report`
    code = main(["report", str(out_dir / "report.json")])
    assert code == 0
    assert "mutation campaign" in capsys.readouterr().out


def test_cli_plan_only(tmp_path, capsys):
    path = write_manifest(tmp_path, {"source": DESIGN, "until": 10})
    code = main(["mutate", path, "--plan-only"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "repro.mutate.plan/1"
    assert document["mutants"]


def test_cli_operator_and_seed_overrides(tmp_path, capsys):
    path = write_manifest(tmp_path, {"source": DESIGN, "until": 10})
    code = main(["mutate", path, "--plan-only", "--operators",
                 "opswap,cmpswap", "--seed", "4", "--max-mutants", "2"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["operators"] == ["opswap", "cmpswap"]
    assert document["seed"] == 4
    assert len(document["mutants"]) == 2


def test_cli_bad_manifest_exits_2(tmp_path, capsys):
    path = write_manifest(tmp_path, {"source": DESIGN, "zap": True})
    assert main(["mutate", path]) == 2
    assert "unknown key" in capsys.readouterr().err


def test_cli_dirty_baseline_exits_3(tmp_path, capsys):
    path = write_manifest(tmp_path,
                          {"source": BROKEN_CHECKER, "until": 10,
                           "operators": ["opswap"]})
    assert main(["mutate", path, "--quiet"]) == 3
    assert "baseline" in capsys.readouterr().err
