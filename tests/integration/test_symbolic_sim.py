"""Symbolic execution semantics: splits, guarded writes, exploration."""

import itertools

import pytest

from repro.bdd import FALSE, TRUE
from tests.conftest import run_source


def assignments(n):
    return itertools.product([False, True], repeat=n)


class TestSymbolicBranching:
    def test_both_branches_simulated(self):
        """One run covers both sides of a symbolic if."""
        result, sim = run_source("""
            module tb; reg a; reg [3:0] y;
              initial begin
                a = $random;
                if (a) y = 7;
                else y = 3;
              end
            endmodule
        """)
        y = sim.value("y")
        assert y.substitute({0: True}).to_int() == 7
        assert y.substitute({0: False}).to_int() == 3

    def test_nested_splits_cover_all_paths(self):
        result, sim = run_source("""
            module tb; reg a, b; reg [3:0] y;
              initial begin
                a = $random; b = $random;
                if (a) begin
                  if (b) y = 3; else y = 2;
                end
                else begin
                  if (b) y = 1; else y = 0;
                end
              end
            endmodule
        """)
        y = sim.value("y")
        for va, vb in assignments(2):
            expected = (2 if va else 0) + (1 if vb else 0)
            assert y.substitute({0: va, 1: vb}).to_int() == expected

    def test_symbolic_case_covers_all_arms(self):
        result, sim = run_source("""
            module tb; reg [1:0] s; reg [3:0] y;
              initial begin
                s = $random;
                case (s)
                  0: y = 10;
                  1: y = 11;
                  2: y = 12;
                  default: y = 13;
                endcase
              end
            endmodule
        """)
        y = sim.value("y")
        for v0, v1 in assignments(2):
            sel = (2 if v1 else 0) + (1 if v0 else 0)
            assert y.substitute({0: v0, 1: v1}).to_int() == 10 + sel

    def test_case_selector_captured_before_arms(self):
        # Arm bodies that modify the selector must not change matching.
        result, sim = run_source("""
            module tb; reg [1:0] s; reg [3:0] y;
              initial begin
                s = 0;
                case (s)
                  0: begin s = 1; y = 5; end
                  1: y = 6;
                  default: y = 7;
                endcase
              end
            endmodule
        """)
        assert sim.value("y").to_int() == 5

    def test_if_condition_captured_at_split(self):
        # The then-branch mutating the condition's operand must not
        # corrupt the else control (DESIGN.md, Fig. 9 deviation).
        result, sim = run_source("""
            module tb; reg a; reg [1:0] taken;
              initial begin
                a = $random;
                taken = 0;
                if (a == 1) begin
                  a = 0;       // perturb the condition operand
                  taken = 1;
                end
                else begin
                  taken = 2;
                end
              end
            endmodule
        """)
        taken = sim.value("taken")
        assert taken.substitute({0: True}).to_int() == 1
        assert taken.substitute({0: False}).to_int() == 2

    def test_symbolic_while_terminates_via_dead_control(self):
        result, sim = run_source("""
            module tb; reg [2:0] n; reg [3:0] count;
              initial begin
                n = $random;
                count = 0;
                while (n != 0) begin
                  n = n - 1;
                  count = count + 1;
                end
              end
            endmodule
        """)
        count = sim.value("count")
        for bits in assignments(3):
            n = sum(1 << i for i, b in enumerate(bits) if b)
            cube = dict(enumerate(bits))
            assert count.substitute(cube).to_int() == n

    def test_symbolic_repeat_count(self):
        result, sim = run_source("""
            module tb; reg [1:0] n; reg [3:0] total;
              initial begin
                n = $random;
                total = 0;
                repeat (n) total = total + 3;
              end
            endmodule
        """)
        total = sim.value("total")
        for v0, v1 in assignments(2):
            n = (2 if v1 else 0) + (1 if v0 else 0)
            assert total.substitute({0: v0, 1: v1}).to_int() == 3 * n

    def test_dead_branch_never_executes(self):
        result, _ = run_source("""
            module tb; reg a;
              initial begin
                a = $random;
                if (a & ~a) $error;   // unsatisfiable
              end
            endmodule
        """)
        assert not result.violations


class TestSymbolicDataFlow:
    def test_arithmetic_relation(self):
        result, sim = run_source("""
            module tb; reg [3:0] a; reg [4:0] dbl;
              initial begin
                a = $random;
                dbl = a + a;
              end
            endmodule
        """)
        dbl = sim.value("dbl")
        for bits in assignments(4):
            a = sum(1 << i for i, b in enumerate(bits) if b)
            assert dbl.substitute(dict(enumerate(bits))).to_int() == 2 * a

    def test_symbolic_through_hierarchy(self):
        result, sim = run_source("""
            module inc(input [3:0] x, output [3:0] y);
              assign y = x + 1;
            endmodule
            module tb; reg [3:0] a; wire [3:0] y;
              inc u(.x(a), .y(y));
              initial begin a = $random; #1; end
            endmodule
        """)
        y = sim.value("y")
        for bits in assignments(4):
            a = sum(1 << i for i, b in enumerate(bits) if b)
            assert y.substitute(dict(enumerate(bits))).to_int() == (a + 1) % 16

    def test_random_width_matches_context(self):
        """`a = $random` introduces exactly width(a) variables."""
        result, sim = run_source("""
            module tb; reg [2:0] a;
              initial a = $random;
            endmodule
        """)
        assert sim.mgr.var_count == 3

    def test_randomxz_covers_four_values(self):
        result, sim = run_source("""
            module tb; reg a;
              initial a = $randomxz;
            endmodule
        """)
        assert sim.mgr.var_count == 2  # two rails per bit
        a = sim.value("a")
        seen = set()
        for va, vb in assignments(2):
            seen.add(a.substitute({0: va, 1: vb}).to_verilog_bits())
        assert seen == {"0", "1", "x", "z"}

    def test_symbolic_bit_select_read(self):
        result, sim = run_source("""
            module tb; reg [3:0] v; reg [1:0] i; reg b;
              initial begin
                v = 4'b0110;
                i = $random;
                b = v[i];
              end
            endmodule
        """)
        b = sim.value("b")
        for v0, v1 in assignments(2):
            i = (2 if v1 else 0) + (1 if v0 else 0)
            expected = (0b0110 >> i) & 1
            assert b.substitute({0: v0, 1: v1}).to_int() == expected

    def test_symbolic_bit_select_write(self):
        result, sim = run_source("""
            module tb; reg [3:0] v; reg [1:0] i;
              initial begin
                v = 4'b0000;
                i = $random;
                v[i] = 1;
              end
            endmodule
        """)
        v = sim.value("v")
        for v0, v1 in assignments(2):
            i = (2 if v1 else 0) + (1 if v0 else 0)
            assert v.substitute({0: v0, 1: v1}).to_int() == (1 << i)

    def test_symbolic_shift(self):
        result, sim = run_source("""
            module tb; reg [1:0] k; reg [7:0] v;
              initial begin
                k = $random;
                v = 8'h01 << k;
              end
            endmodule
        """)
        v = sim.value("v")
        for v0, v1 in assignments(2):
            k = (2 if v1 else 0) + (1 if v0 else 0)
            assert v.substitute({0: v0, 1: v1}).to_int() == 1 << k


class TestSymbolicClocking:
    def test_symbolic_nba_under_clock(self):
        result, sim = run_source("""
            module tb; reg clk; reg [3:0] d, q;
              initial begin
                clk = 0; d = $random;
                #1 clk = 1;
                #1 $finish;
              end
              always @(posedge clk) q <= d;
            endmodule
        """)
        q = sim.value("q")
        for bits in assignments(4):
            d = sum(1 << i for i, b in enumerate(bits) if b)
            assert q.substitute(dict(enumerate(bits))).to_int() == d

    def test_conditional_event_wake(self):
        """A waiter wakes only on the paths where the edge happened."""
        result, sim = run_source("""
            module tb; reg a, trig; reg [3:0] woke;
              initial begin
                woke = 0;
                a = $random;
                trig = 0;
                #1;
                if (a) trig = 1;   // edge occurs only where a=1
                #1 $finish;
              end
              always @(posedge trig) woke = 5;
            endmodule
        """)
        woke = sim.value("woke")
        assert woke.substitute({0: True}).to_int() == 5
        assert woke.substitute({0: False}).to_int() == 0

    def test_symbolic_handshake_roundtrip(self):
        result, _ = run_source("""
            module echo(input req, input [3:0] din, output reg ack,
                        output reg [3:0] dout);
              initial ack = 0;
              always begin
                @(posedge req);
                #2 dout = din;
                ack = 1;
                @(negedge req);
                ack = 0;
              end
            endmodule
            module tb; reg req; reg [3:0] din; wire ack; wire [3:0] dout;
              echo u(.req(req), .din(din), .ack(ack), .dout(dout));
              initial begin
                req = 0;
                din = $random;
                #1 req = 1;
                @(posedge ack);
                if (dout !== din) $error;
                req = 0;
                #1 $finish;
              end
            endmodule
        """)
        assert not result.violations
