"""IEEE-1364 expression sizing rules, observed through simulation."""

import pytest

from tests.conftest import run_source, run_value


class TestContextWidth:
    def test_carry_captured_by_wider_lhs(self):
        # classic: sum of two 4-bit values into a 5-bit target keeps
        # the carry because operands widen to the LHS context
        result, sim = run_source("""
            module tb; reg [3:0] a, b; reg [4:0] s;
              initial begin a = 15; b = 1; s = a + b; end
            endmodule
        """)
        assert sim.value("s").to_int() == 16

    def test_carry_lost_at_same_width(self):
        result, sim = run_source("""
            module tb; reg [3:0] a, b, s;
              initial begin a = 15; b = 1; s = a + b; end
            endmodule
        """)
        assert sim.value("s").to_int() == 0

    def test_concat_is_self_determined(self):
        # inside a concat, the addition stays at max(operand) width
        result, sim = run_source("""
            module tb; reg [3:0] a, b; reg [4:0] s;
              initial begin a = 15; b = 1; s = {a + b}; end
            endmodule
        """)
        assert sim.value("s").to_int() == 0  # carry lost inside {}

    def test_concat_lhs_width_captures_carry(self):
        result, sim = run_source("""
            module tb; reg [3:0] a, b, low; reg c;
              initial begin a = 9; b = 8; {c, low} = a + b; end
            endmodule
        """)
        assert sim.value("c").to_int() == 1
        assert sim.value("low").to_int() == 1

    def test_comparison_operands_sized_together(self):
        result, _ = run_source("""
            module tb; reg [3:0] a; reg [7:0] b;
              initial begin
                a = 15; b = 8'h0F;
                if (a != b) $error;   // zero-extended compare
              end
            endmodule
        """)
        assert not result.violations

    def test_shift_amount_self_determined(self):
        result, sim = run_source("""
            module tb; reg [7:0] v; reg [1:0] k;
              initial begin k = 3; v = 8'h01 << k; end
            endmodule
        """)
        assert sim.value("v").to_int() == 8

    def test_ternary_branches_widen(self):
        result, sim = run_source("""
            module tb; reg c; reg [3:0] a; reg [7:0] y;
              initial begin c = 1; a = 15; y = c ? a + a : 8'd0; end
            endmodule
        """)
        assert sim.value("y").to_int() == 30


class TestSignedness:
    def test_integer_arithmetic_signed(self):
        result, sim = run_source("""
            module tb; integer i; reg ok;
              initial begin
                i = -5;
                ok = (i < 0);
              end
            endmodule
        """)
        assert sim.value("ok").to_int() == 1

    def test_reg_comparison_unsigned(self):
        result, sim = run_source("""
            module tb; reg [3:0] r; reg ok;
              initial begin
                r = -1;           // stores 15
                ok = (r > 10);    // unsigned: true
              end
            endmodule
        """)
        assert sim.value("ok").to_int() == 1

    def test_signed_cast(self):
        result, sim = run_source("""
            module tb; reg [3:0] r; reg ok;
              initial begin
                r = 4'b1111;
                ok = ($signed(r) < 0);
              end
            endmodule
        """)
        assert sim.value("ok").to_int() == 1

    def test_unsigned_cast(self):
        result, sim = run_source("""
            module tb; integer i; reg ok;
              initial begin
                i = -1;
                ok = ($unsigned(i) > 100);
              end
            endmodule
        """)
        assert sim.value("ok").to_int() == 1

    def test_mixed_signedness_is_unsigned(self):
        result, sim = run_source("""
            module tb; integer i; reg [3:0] r; reg ok;
              initial begin
                i = -1; r = 2;
                ok = (i > r);    // mixed -> unsigned -> huge i wins
              end
            endmodule
        """)
        assert sim.value("ok").to_int() == 1

    def test_sign_extension_on_assign(self):
        result, sim = run_source("""
            module tb; integer i; reg [7:0] r;
              initial begin
                i = -2;
                r = i;           // truncation of two's complement
              end
            endmodule
        """)
        assert sim.value("r").to_int() == 0xFE

    def test_signed_division(self):
        result, sim = run_source("""
            module tb; integer a, b, q;
              initial begin a = -7; b = 2; q = a / b; end
            endmodule
        """)
        assert sim.value("q").to_int() == -3


class TestLiterals:
    def test_unsized_literal_32_bits(self):
        result, sim = run_source("""
            module tb; reg [39:0] v;
              initial v = ~0;      // ~(32-bit) zero-extended to 40
            endmodule
        """)
        # context width is 40: the literal 0 widens BEFORE inversion
        assert sim.value("v").to_int() == (1 << 40) - 1

    def test_sized_xz_fill(self):
        assert run_value("""
            module tb; reg [7:0] v; initial v = 8'bx; endmodule
        """, "v") == "xxxxxxxx"

    def test_negative_literal_wraps(self):
        result, sim = run_source("""
            module tb; reg [3:0] v; initial v = -1; endmodule
        """)
        assert sim.value("v").to_int() == 15
