"""Non-blocking assignment edge cases (1364 stratified-queue rules)."""

import itertools

import pytest

from tests.conftest import run_source


class TestNbaOrdering:
    def test_last_nba_wins_same_target(self):
        result, sim = run_source("""
            module tb; reg [3:0] v;
              initial begin
                v <= 1;
                v <= 2;
                v <= 3;
                #1;
              end
            endmodule
        """)
        assert sim.value("v").to_int() == 3

    def test_nba_applies_after_all_active(self):
        result, _ = run_source("""
            module tb; reg [3:0] a, seen_by_b;
              initial begin
                a = 0;
                a <= 9;
              end
              initial begin
                #0 seen_by_b = a;   // inactive region: still before NBA
                #1;
                if (seen_by_b !== 0) $error;
                if (a !== 9) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_nba_to_bit_select(self):
        result, sim = run_source("""
            module tb; reg [3:0] v;
              initial begin
                v = 4'b0000;
                v[2] <= 1'b1;
                #1;
              end
            endmodule
        """)
        assert sim.value("v").to_verilog_bits() == "0100"

    def test_nba_to_part_select(self):
        result, sim = run_source("""
            module tb; reg [7:0] v;
              initial begin
                v = 8'h00;
                v[7:4] <= 4'hA;
                #1;
              end
            endmodule
        """)
        assert sim.value("v").to_int() == 0xA0

    def test_nba_to_memory_word(self):
        result, _ = run_source("""
            module tb; reg [7:0] m [0:3];
              initial begin
                m[1] <= 8'h55;
                #1;
                if (m[1] !== 8'h55) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_nba_index_evaluated_at_schedule_time(self):
        result, _ = run_source("""
            module tb; reg [7:0] m [0:3]; reg [1:0] i;
              initial begin
                i = 1;
                m[i] <= 8'hEE;   // index captured now
                i = 3;
                #1;
                if (m[1] !== 8'hEE) $error;
                if (m[3] === 8'hEE) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_nba_rhs_evaluated_at_schedule_time(self):
        result, _ = run_source("""
            module tb; reg [3:0] a, b;
              initial begin
                a = 5;
                b <= a;     // captures 5
                a = 9;
                #1;
                if (b !== 5) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_shift_register_no_race(self):
        # the canonical NBA use: all stages see pre-edge values
        result, _ = run_source("""
            module tb; reg clk; reg [3:0] s0, s1, s2;
              initial begin
                clk = 0;
                s0 = 1; s1 = 0; s2 = 0;
                repeat (4) #5 clk = ~clk;
                #1;
                if (s1 !== 1 || s2 !== 1) $error;
              end
              always @(posedge clk) begin
                s1 <= s0;
                s2 <= s1;
              end
            endmodule
        """)
        assert not result.violations

    def test_symbolic_nba_guarded(self):
        result, sim = run_source("""
            module tb; reg c; reg [3:0] v;
              initial begin
                v = 0;
                c = $random;
                if (c) v <= 7;
                #1;
              end
            endmodule
        """)
        v = sim.value("v")
        assert v.substitute({0: True}).to_int() == 7
        assert v.substitute({0: False}).to_int() == 0

    def test_delayed_nba_interleaving(self):
        result, _ = run_source("""
            module tb; reg [3:0] v;
              initial begin
                v = 0;
                v <= #4 1;
                v <= #2 2;
                #3 if (v !== 2) $error;
                #2 if (v !== 1) $error;
              end
            endmodule
        """)
        assert not result.violations


class TestInoutPorts:
    def test_inout_alias_bidirectional(self):
        result, _ = run_source("""
            module xcvr(inout pad, input drive, input d);
              assign pad = drive ? d : 1'bz;
            endmodule
            module tb;
              wire bus;
              reg drv_a, da, drv_b, db;
              xcvr a(.pad(bus), .drive(drv_a), .d(da));
              xcvr b(.pad(bus), .drive(drv_b), .d(db));
              initial begin
                drv_a = 1; da = 1; drv_b = 0; db = 0;
                #1 if (bus !== 1'b1) $error;
                drv_a = 0; drv_b = 1;
                #1 if (bus !== 1'b0) $error;
                drv_b = 0;
                #1 if (bus !== 1'bz) $error;
              end
            endmodule
        """)
        assert not result.violations
