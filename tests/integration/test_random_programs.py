"""Randomized differential testing: generated programs, symbolic vs
concrete.

Hypothesis generates small behavioral programs (guaranteed to
terminate: loops have concrete bounds, delays are constant) over two
symbolic 2-bit inputs, then every generated program is cross-validated:
each concrete substitution of the symbolic result must equal a
conventional concrete run fed the same values.  This is fuzzing for
the entire compile+simulate stack.

The GC variants re-run the same differential property with BDD
garbage collection and dynamic reordering forced at aggressive
thresholds (collect after every node of growth, sift between steps),
pinning that memory management is invisible to simulation semantics.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import SimOptions
from tests.integration.test_cross_validation import cross_validate

FUZZ_SCALE = max(1, int(float(os.environ.get("REPRO_FUZZ_SCALE", "1"))))

#: every collection opportunity taken, sifting from a near-empty arena
AGGRESSIVE = dict(
    stop_on_violation=False,
    gc_threshold=1,
    dyn_reorder=True,
    reorder_threshold=16,
    reorder_growth=1.1,
)

VARS = ["x", "y", "z"]
INPUTS = ["a", "b"]


@st.composite
def expressions(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return draw(st.sampled_from(VARS + INPUTS))
        if choice == 1:
            return str(draw(st.integers(min_value=0, max_value=15)))
        return f"4'd{draw(st.integers(min_value=0, max_value=15))}"
    op = draw(st.sampled_from(["+", "-", "&", "|", "^", "<", "==", ">>"]))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    return f"({left} {op} {right})"


@st.composite
def statements(draw, depth=2):
    kind = draw(st.sampled_from(
        ["assign", "assign", "nba", "if", "repeat", "for", "delay"]
        if depth > 0 else ["assign", "nba", "delay"]
    ))
    if kind == "assign":
        target = draw(st.sampled_from(VARS))
        return f"{target} = {draw(expressions())};"
    if kind == "nba":
        target = draw(st.sampled_from(VARS))
        return f"{target} <= {draw(expressions())};"
    if kind == "delay":
        return f"#{draw(st.integers(min_value=1, max_value=3))};"
    if kind == "if":
        cond = draw(expressions())
        then_stmt = draw(statements(depth=depth - 1))
        if draw(st.booleans()):
            else_stmt = draw(statements(depth=depth - 1))
            return f"if ({cond}) begin {then_stmt} end " \
                   f"else begin {else_stmt} end"
        return f"if ({cond}) begin {then_stmt} end"
    if kind == "repeat":
        count = draw(st.integers(min_value=0, max_value=3))
        body = draw(statements(depth=depth - 1))
        return f"repeat ({count}) begin {body} end"
    # for loop over a per-depth index variable — nested loops must not
    # share an index, or the inner loop resets the outer one and the
    # program never terminates
    bound = draw(st.integers(min_value=1, max_value=3))
    body = draw(statements(depth=depth - 1))
    idx = f"idx{depth}"
    return (f"for ({idx} = 0; {idx} < {bound}; {idx} = {idx} + 1) "
            f"begin {body} end")


@st.composite
def programs(draw):
    body = "\n            ".join(
        draw(st.lists(statements(), min_size=2, max_size=5))
    )
    return f"""
        module tb;
          reg [1:0] a, b;
          reg [3:0] x, y, z;
          integer idx1, idx2;
          initial begin
            x = 0; y = 0; z = 0;
            a = $random;
            b = $random;
            {body}
          end
        endmodule
    """


@settings(max_examples=60, deadline=None)
@given(programs())
def test_generated_program_cross_validates(source):
    cross_validate(source, nets=["x", "y", "z"], until=200, max_cases=4)


@settings(max_examples=25, deadline=None)
@given(programs())
def test_generated_program_all_cases(source):
    # fewer examples, but exhaustive over all 16 input combinations
    cross_validate(source, nets=["x", "y", "z"], until=200, max_cases=16)


@settings(max_examples=60, deadline=None)
@given(programs())
def test_generated_program_pretty_print_roundtrip(source):
    """parse(print(parse(p))) is structurally identical for generated
    programs too."""
    from tests.unit.test_printer import roundtrip

    roundtrip(source)


@settings(max_examples=30, deadline=None)
@given(programs())
def test_generated_program_agrees_under_gc_and_reorder(source):
    """The differential property holds with GC + sifting forced on:
    every concrete substitution of the (collected, reordered) symbolic
    run still matches a conventional concrete simulation bit-exactly."""
    cross_validate(source, nets=["x", "y", "z"], until=200, max_cases=4,
                   options=SimOptions(**AGGRESSIVE))


@pytest.mark.fuzz
@settings(max_examples=25 * FUZZ_SCALE, deadline=None)
@given(programs())
def test_generated_program_gc_soak(source):
    """Scheduled-lane soak: exhaustive input cases under aggressive
    GC/reordering; REPRO_FUZZ_SCALE multiplies the program count."""
    cross_validate(source, nets=["x", "y", "z"], until=200, max_cases=16,
                   options=SimOptions(**AGGRESSIVE))
