"""Kernel behaviors not covered elsewhere: continuation, results API,
output control, watchdogs, misc system tasks."""

import pytest

import repro
from repro import SimOptions
from repro.errors import CompileError, SimulationError
from tests.conftest import run_source


class TestRunControl:
    def test_result_value_helper(self):
        result, _ = run_source("""
            module tb; reg [3:0] v; initial v = 9; endmodule
        """)
        assert result.value("v").to_int() == 9

    def test_queue_drained_not_finished(self):
        result, _ = run_source("""
            module tb; reg v; initial v = 1; endmodule
        """)
        assert not result.finished  # no $finish, queue just drained

    def test_multiple_run_calls_idempotent_when_done(self):
        sim = repro.open_sim("""
            module tb; reg [3:0] v; initial begin #5 v = 1; end endmodule
        """)
        first = sim.run()
        second = sim.run()
        assert first.time == second.time == 5

    def test_until_exactly_at_event_time(self):
        sim = repro.open_sim("""
            module tb; reg [3:0] v;
              initial begin v = 0; #10 v = 1; #10 v = 2; end
            endmodule
        """)
        sim.run(until=10)
        assert sim.value("v").to_int() == 1

    def test_trace_stats_timeline(self):
        result, _ = run_source("""
            module tb; reg [3:0] v;
              initial begin v = 0; #5 v = 1; #5 v = 2; end
            endmodule
        """, trace_stats=True)
        times = [p.sim_time for p in result.stats.timeline]
        assert times == sorted(times)
        assert result.stats.timeline[-1].events == \
            result.stats.events_processed

    def test_echo_output(self, capsys):
        run_source("""
            module tb; initial $display("echoed"); endmodule
        """, echo_output=True)
        assert "echoed" in capsys.readouterr().out


class TestAlwaysSemantics:
    def test_always_without_control_hangs(self):
        from repro.errors import SimulationHang

        with pytest.raises(SimulationHang):
            run_source("""
                module tb; reg v; always v = ~v; endmodule
            """, max_step_activity=500)

    def test_always_with_delay_loops_forever(self):
        sim = repro.open_sim("""
            module tb; reg [7:0] n;
              initial n = 0;
              always #5 n = n + 1;
            endmodule
        """)
        result = sim.run(until=52)
        assert sim.value("n").to_int() == 10

    def test_two_always_blocks_communicate(self):
        result, _ = run_source("""
            module tb; reg ping, pong; reg [7:0] volleys;
              initial begin
                ping = 0; pong = 0; volleys = 0;
                #1 ping = 1;
                #20 if (volleys < 4) $error;
                $finish;
              end
              always @(posedge ping) begin
                volleys = volleys + 1;
                #2 pong = ~pong;
                ping = 0;
              end
              always @(pong) begin
                #2 ping = 1;
              end
            endmodule
        """)
        assert not result.violations


class TestHierarchicalAccess:
    def test_testbench_peeks_into_dut(self):
        result, _ = run_source("""
            module counter(input clk);
              reg [3:0] hidden;
              initial hidden = 0;
              always @(posedge clk) hidden = hidden + 1;
            endmodule
            module tb; reg clk;
              counter dut(.clk(clk));
              initial begin
                clk = 0;
                repeat (6) #5 clk = ~clk;
                #1;
                if (dut.hidden !== 3) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_deep_hierarchy_reference(self):
        result, _ = run_source("""
            module leaf; reg [3:0] v; initial v = 7; endmodule
            module mid; leaf u(); endmodule
            module tb;
              mid m();
              initial begin
                #1;
                if (m.u.v !== 7) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_unknown_hierarchical_path(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb; initial $display("%d", no.such.path); endmodule
            """)


class TestErrorHandling:
    def test_unsupported_system_task(self):
        with pytest.raises(CompileError):
            run_source("module tb; initial $fluxcapacitor; endmodule")

    def test_readmem_rejected(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb; reg [7:0] m [0:3];
                  initial $readmemh("x.hex", m);
                endmodule
            """)

    def test_assign_to_wire_in_procedural_rejected(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb; wire w; initial w = 1; endmodule
            """)

    def test_continuous_assign_to_reg_rejected(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb; reg r; assign r = 1; endmodule
            """)

    def test_random_in_continuous_assign_rejected(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb; wire [3:0] w; assign w = $random; endmodule
            """)

    def test_memory_without_index_rejected(self):
        with pytest.raises(CompileError):
            run_source("""
                module tb; reg [7:0] m [0:3]; reg [7:0] v;
                  initial v = m;
                endmodule
            """)


class TestMonitorsAndStrobes:
    def test_monitor_replaced_by_later_call(self):
        result, _ = run_source("""
            module tb; reg [3:0] a, b;
              initial begin
                a = 1; b = 1;
                $monitor("a=%d", a);
                #1 a = 2;
                #1 $monitor("b=%d", b);
                #1 b = 7;
              end
            endmodule
        """)
        assert result.output == ["a=1", "a=2", "b=1", "b=7"]

    def test_strobe_multiple_in_step(self):
        result, _ = run_source("""
            module tb; reg [3:0] v;
              initial begin
                v = 1;
                $strobe("first %d", v);
                $strobe("second %d", v);
                v = 3;
              end
            endmodule
        """)
        assert result.output == ["first 3", "second 3"]
