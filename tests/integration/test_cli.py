"""Tests for the ``symsim`` command-line front end."""

import pytest

from repro.cli import build_arg_parser, main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "tb.v"
    path.write_text("""
        module tb; reg [3:0] a;
          initial begin
            a = $random;
            $display("hello");
            if (a == `TARGET) $error("hit");
          end
        endmodule
    """)
    return str(path)


class TestArgParsing:
    def test_defaults(self):
        args = build_arg_parser().parse_args(["x.v"])
        assert args.top is None
        assert args.accumulation == "full"
        assert not args.resimulate


class TestMain:
    def test_violation_exit_code(self, design_file, capsys):
        code = main([design_file, "--define", "TARGET=9", "--quiet"])
        assert code == 1
        out = capsys.readouterr().out
        assert "$error" in out

    def test_clean_run_exit_code(self, design_file, capsys):
        code = main([design_file, "--define", "TARGET=99", "--quiet"])
        assert code == 0

    def test_resimulate_flag(self, design_file, capsys):
        code = main([design_file, "--define", "TARGET=5", "--quiet",
                     "--resimulate"])
        assert code == 1
        out = capsys.readouterr().out
        assert "resimulation reproduced 1" in out

    def test_random_seed_mode(self, design_file, capsys):
        code = main([design_file, "--define", "TARGET=20", "--quiet",
                     "--random-seed", "3"])
        assert code == 0
        assert "[random]" in capsys.readouterr().out

    def test_stats_flag(self, design_file, capsys):
        main([design_file, "--define", "TARGET=99", "--quiet", "--stats"])
        out = capsys.readouterr().out
        assert "events processed" in out

    def test_accumulation_choice(self, design_file):
        code = main([design_file, "--define", "TARGET=99", "--quiet",
                     "--accumulation", "none"])
        assert code == 0

    def test_syntax_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.v"
        bad.write_text("module tb; garbage !!!")
        assert main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_until_bound(self, tmp_path, capsys):
        path = tmp_path / "t.v"
        path.write_text("""
            module tb;
              initial begin #100 $display("late"); end
            endmodule
        """)
        code = main([str(path), "--until", "50", "--quiet"])
        assert code == 0
        assert "late" not in capsys.readouterr().out
