"""Four-valued (X/Z) behavior at the simulation level."""

import pytest

from tests.conftest import run_source


class TestInitialValues:
    def test_regs_start_x(self):
        result, sim = run_source("module tb; reg [3:0] r; endmodule")
        assert sim.value("r").to_verilog_bits() == "xxxx"

    def test_undriven_wire_is_z(self):
        result, sim = run_source("module tb; wire [1:0] w; endmodule")
        assert sim.value("w").to_verilog_bits() == "zz"

    def test_integer_starts_x(self):
        result, sim = run_source("module tb; integer i; endmodule")
        assert sim.value("i").to_verilog_bits() == "x" * 32


class TestXPropagation:
    def test_x_poisons_arithmetic(self):
        result, _ = run_source("""
            module tb; reg [3:0] a, b, y;
              initial begin
                a = 4'b00x0; b = 1;
                y = a + b;
                if (y !== 4'bxxxx) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_x_condition_takes_else(self):
        result, sim = run_source("""
            module tb; reg c; reg [3:0] y;
              initial begin
                // c is x here
                if (c) y = 1;
                else y = 2;
              end
            endmodule
        """)
        assert sim.value("y").to_int() == 2

    def test_case_x_selector_falls_to_default(self):
        result, sim = run_source("""
            module tb; reg [1:0] s; reg [3:0] y;
              initial begin
                case (s)    // s is xx
                  0: y = 1;
                  1: y = 2;
                  default: y = 9;
                endcase
              end
            endmodule
        """)
        assert sim.value("y").to_int() == 9

    def test_case_item_with_x_matches_literally(self):
        result, sim = run_source("""
            module tb; reg [1:0] s; reg [3:0] y;
              initial begin
                case (s)        // s is xx
                  2'bxx: y = 7; // case compares ===-style
                  default: y = 0;
                endcase
              end
            endmodule
        """)
        assert sim.value("y").to_int() == 7

    def test_xz_literals(self):
        result, _ = run_source("""
            module tb; reg [7:0] v;
              initial begin
                v = 8'b1010_xzxz;
                if (v[0] !== 1'bz) $error;
                if (v[1] !== 1'bx) $error;
                if (v[7] !== 1'b1) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_anded_with_zero_kills_x(self):
        result, _ = run_source("""
            module tb; reg [3:0] v, y;
              initial begin
                y = v & 4'b0000;   // v is x
                if (y !== 4'b0000) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_equality_with_x_is_not_true(self):
        result, sim = run_source("""
            module tb; reg a; reg [1:0] path;
              initial begin
                // a === x: (a == 0) evaluates to x -> else branch
                if (a == 0) path = 1;
                else path = 2;
              end
            endmodule
        """)
        assert sim.value("path").to_int() == 2

    def test_case_equality_with_x_decides(self):
        result, _ = run_source("""
            module tb; reg a;
              initial begin
                if (a === 1'bx) ;
                else $error;
              end
            endmodule
        """)
        assert not result.violations


class TestZBehavior:
    def test_tristate_bus(self):
        result, _ = run_source("""
            module tb; reg d0, d1, en0, en1; wire bus;
              assign bus = en0 ? d0 : 1'bz;
              assign bus = en1 ? d1 : 1'bz;
              initial begin
                d0 = 1; d1 = 0; en0 = 0; en1 = 0;
                #1 if (bus !== 1'bz) $error;
                en0 = 1;
                #1 if (bus !== 1'b1) $error;
                en0 = 0; en1 = 1;
                #1 if (bus !== 1'b0) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_z_through_logic_becomes_x(self):
        result, _ = run_source("""
            module tb; wire w; reg [1:0] y;
              initial begin
                #1 y = {1'b0, ~w};      // ~z = x
                if (y[0] !== 1'bx) $error;
              end
            endmodule
        """)
        assert not result.violations

    def test_supply_nets(self):
        result, _ = run_source("""
            module tb; supply1 vdd; supply0 gnd;
              initial begin
                #1;
                if (vdd !== 1'b1 || gnd !== 1'b0) $error;
              end
            endmodule
        """)
        assert not result.violations


class TestAssertXSemantics:
    def test_assert_not_violated_by_x(self):
        # goal is x initially: $assert(goal == 0) must not fire (the
        # paper's 8051 experiment would otherwise trip at time 0).
        result, _ = run_source("""
            module tb; reg goal;
              initial begin
                $assert(goal == 0);
                #5 goal = 0;
                #5;
              end
            endmodule
        """)
        assert not result.violations

    def test_assert_fires_on_known_false(self):
        result, _ = run_source("""
            module tb; reg goal;
              initial begin
                $assert(goal == 0);
                #5 goal = 1;
              end
            endmodule
        """)
        assert len(result.violations) == 1

    def test_strict_unknown_mode(self):
        result, _ = run_source("""
            module tb; reg goal;
              initial $assert(goal == 0);   // goal stays x
            endmodule
        """, check_unknown_assert=True)
        assert len(result.violations) == 1
